"""The campaign service: many concurrent campaigns over one shared roster.

Before this layer, one ``repro-campaign orchestrate`` invocation owned its
:class:`~repro.runtime.scheduler.BackendScheduler` outright — slot accounting
died with the process, so two campaigns could not share a roster and a second
user meant a second cluster.  :class:`CampaignService` lifts orchestration
into a resident object:

* **submissions** (:class:`CampaignSpec`: label, artifact, shard count, plan
  arguments, tenant, priority) each run as one
  :class:`~repro.runtime.orchestrator.ShardOrchestrator` — the orchestrator
  is reused as a *library client*, injected with a per-campaign view of the
  service's shared :class:`~repro.runtime.service_queue.ServiceDispatcher`,
  so every shard launch of every campaign flows through one priority queue
  with per-tenant quotas before it may take a backend slot;
* **isolation** — each campaign journals into its own subdirectory
  ``<journal_dir>/<label>/``, so shard journal names never collide across
  campaigns and the byte-identity contract holds per campaign: the merged
  payload saved there is byte-identical to a one-shot run of the same label;
* **progress** — per-shard cell counts are tailed with
  :class:`~repro.runtime.journal.JournalProgress` probers (O(new bytes) per
  poll) and exposed both as point-in-time status and as an async event
  stream (:meth:`CampaignService.stream`) the API layer serves as NDJSON/SSE;
* **cancellation** — :meth:`CampaignService.cancel` cancels the campaign's
  task; the orchestrator's cleanup group-kills every in-flight shard attempt,
  and the service journals a ``cancelled`` record with per-shard progress;
* **crash safety** — every submission and terminal state is fsynced to
  ``service.campaigns.jsonl``.  A restarted service (``resume=True``)
  re-adopts every campaign that was submitted but never reached a terminal
  state; the re-run orchestrator resumes from the shard journals, so no
  completed cell is recomputed.  A label already in flight is refused with
  its plan fingerprint, so the same campaign can never run twice at once.

The service holds no wall-clock state anywhere a journaled record could pick
it up (repro-lint REP003 covers this module): records are functions of the
submission alone, durations come from ``time.monotonic``.
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Sequence

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache
from repro.runtime.backends import ExecutionBackend, LocalProcessBackend
from repro.runtime.journal import JournalProgress, plan_fingerprint
from repro.runtime.orchestrator import CommandFactory, ShardOrchestrator
from repro.runtime.runner import CampaignError, CampaignRunner
from repro.runtime.scheduler import BackendScheduler
from repro.runtime.service_queue import ServiceDispatcher
from repro.runtime.sharding import ShardSpec
from repro.utils.serialization import save_json

#: Scale presets the service resolves submission ``scale`` names against
#: (the same presets the CLI offers for one-shot runs).
SCALE_PRESETS = {
    "tiny": (GridWorldScale.tiny, DroneScale.tiny),
    "fast": (GridWorldScale.fast, DroneScale.fast),
    "paper": (GridWorldScale.paper, DroneScale.paper),
}

#: Campaign states that will never change again.
TERMINAL_STATES = frozenset({"merged", "failed", "cancelled"})

_LABEL_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._@-]*")

#: The service's own journal file inside the journal store.
SERVICE_JOURNAL_NAME = "service.campaigns.jsonl"


class ServiceError(CampaignError):
    """A submission or service-control request could not be honoured."""


@dataclass
class CampaignSpec:
    """One campaign submission: what to run, as whom, how urgently.

    ``label`` names the campaign's journal subdirectory (and must therefore
    be filesystem-safe); it defaults to the artifact id.  ``scale=None``
    inherits the service's default scale, so a daemon started with
    ``--scale tiny`` runs tiny campaigns unless a submission overrides it.
    """

    experiment_id: str
    label: Optional[str] = None
    tenant: str = "default"
    priority: int = 0
    shards: int = 2
    scale: Optional[str] = None
    seed: Optional[int] = None
    workers_per_shard: int = 1
    batch_cells: int = 1
    vectorize: str = "auto"

    def __post_init__(self) -> None:
        if self.label is None:
            self.label = self.experiment_id

    def validate(self) -> None:
        """Raise :class:`ServiceError` on any out-of-range field."""
        if not self.experiment_id:
            raise ServiceError("submission needs an experiment id")
        if not _LABEL_PATTERN.fullmatch(self.label or ""):
            raise ServiceError(
                f"label {self.label!r} is not filesystem-safe (allowed: letters, "
                "digits, '.', '_', '@', '-'; must not start with punctuation)"
            )
        if not self.tenant:
            raise ServiceError("tenant must be a non-empty string")
        if self.shards < 1:
            raise ServiceError(f"shards must be >= 1, got {self.shards}")
        if self.workers_per_shard < 1:
            raise ServiceError(f"workers-per-shard must be >= 1, got {self.workers_per_shard}")
        if self.batch_cells < 1:
            raise ServiceError(f"batch-cells must be >= 1, got {self.batch_cells}")
        if self.scale is not None and self.scale not in SCALE_PRESETS:
            raise ServiceError(
                f"unknown scale {self.scale!r}; available: {sorted(SCALE_PRESETS)}"
            )
        if self.vectorize not in ("auto", "on", "off"):
            raise ServiceError(f"vectorize must be auto/on/off, got {self.vectorize!r}")

    def as_dict(self) -> dict:
        """JSON form recorded in the service journal (and echoed by the API)."""
        return {
            "experiment_id": self.experiment_id,
            "label": self.label,
            "tenant": self.tenant,
            "priority": self.priority,
            "shards": self.shards,
            "scale": self.scale,
            "seed": self.seed,
            "workers_per_shard": self.workers_per_shard,
            "batch_cells": self.batch_cells,
            "vectorize": self.vectorize,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        """Rebuild a spec from its journal/API JSON form, ignoring extras."""
        if not isinstance(payload, dict) or not payload.get("experiment_id"):
            raise ServiceError("submission payload must be an object with experiment_id")
        known = {
            "experiment_id", "label", "tenant", "priority", "shards", "scale",
            "seed", "workers_per_shard", "batch_cells", "vectorize",
        }
        fields = {key: payload[key] for key in sorted(known) if key in payload}
        try:
            spec = cls(**fields)
        except TypeError as error:
            raise ServiceError(f"invalid submission payload: {error}")
        spec.validate()
        return spec


@dataclass
class Campaign:
    """One submitted campaign and everything the service knows about it."""

    id: str
    spec: CampaignSpec
    dir: Path
    state: str = "queued"
    fingerprint: Optional[str] = None
    error: Optional[str] = None
    duration_seconds: float = 0.0
    adopted: bool = False
    task: Optional["asyncio.Task"] = None
    report: Optional[object] = None
    probers: Dict[str, JournalProgress] = field(default_factory=dict)
    events: Deque[str] = field(default_factory=lambda: deque(maxlen=200))

    @property
    def finished(self) -> bool:
        """Whether the campaign reached a terminal state."""
        return self.state in TERMINAL_STATES


class _CampaignScheduler:
    """Per-campaign ``BackendScheduler``-shaped view over the shared dispatcher.

    This is what makes :class:`~repro.runtime.orchestrator.ShardOrchestrator`
    a library client of the service: the orchestrator keeps calling
    ``acquire``/``release``/``has_free_slot`` exactly as before, but every
    acquire now waits in the service's priority/quota queue tagged with this
    campaign's tenant and priority, and lands on the *shared* roster.
    """

    def __init__(self, dispatcher: ServiceDispatcher, campaign: Campaign) -> None:
        self._dispatcher = dispatcher
        self._campaign = campaign

    @property
    def backends(self) -> List[ExecutionBackend]:
        """The shared roster, in declaration order."""
        return self._dispatcher.scheduler.backends

    @property
    def total_slots(self):
        """Total declared capacity of the shared roster."""
        return self._dispatcher.scheduler.total_slots

    def describe(self) -> str:
        """One-line roster summary (delegates to the shared scheduler)."""
        return self._dispatcher.scheduler.describe()

    def free_slots(self, backend: ExecutionBackend) -> float:
        """Free capacity of ``backend`` on the shared roster."""
        return self._dispatcher.scheduler.free_slots(backend)

    def plan_assignments(self, count: int) -> List[ExecutionBackend]:
        """Dry-run assignment preview (delegates to the shared scheduler)."""
        return self._dispatcher.scheduler.plan_assignments(count)

    def has_free_slot(self, *, avoid: Optional[ExecutionBackend] = None) -> bool:
        """Whether an acquire could proceed now (quota headroom and a slot)."""
        return self._dispatcher.has_headroom(self._campaign.spec.tenant, avoid=avoid)

    async def acquire(self, *, avoid: Optional[ExecutionBackend] = None) -> ExecutionBackend:
        """Queue behind priority/quota admission, then take a shared slot."""
        spec = self._campaign.spec
        return await self._dispatcher.acquire(
            spec.tenant,
            spec.priority,
            avoid=avoid,
            meta={"campaign": self._campaign.id, "label": spec.label},
        )

    async def release(self, backend: ExecutionBackend) -> None:
        """Return the slot and the tenant's admission."""
        await self._dispatcher.release(self._campaign.spec.tenant, backend)


class CampaignService:
    """A resident multi-campaign orchestration service over one shared roster.

    Parameters
    ----------
    journal_dir:
        The shared journal store.  Each campaign journals into
        ``<journal_dir>/<label>/``; the service's own submission/state
        journal is ``<journal_dir>/service.campaigns.jsonl``.
    backends:
        The shared :class:`~repro.runtime.backends.ExecutionBackend` roster
        every campaign's shard attempts are scheduled onto (default: one
        unbounded local backend).
    quotas / default_quota:
        Per-tenant caps on *concurrently running shard attempts* (see
        :class:`~repro.runtime.service_queue.QuotaQueue`).
    scale:
        Default workload scale for submissions that do not name one.
    cache_dir:
        Policy cache shared by plan building and every shard subprocess.
    resume:
        Re-adopt unfinished campaigns from the service journal on
        :meth:`start` — the crash-safe restart path.
    inject_kill_shard:
        Chaos hook forwarded to every campaign's orchestrator: kill that
        shard's first attempt once it has journaled a cell.
    ingest_on_completion:
        After each merge, ingest the campaign's journal directory into
        ``<journal_dir>/store.sqlite`` (the PR 7 result store).
    plan_factory / command_factory:
        Testing hooks.  ``plan_factory(spec)`` replaces plan building;
        ``command_factory(campaign)`` returns the per-attempt command hook
        handed to the campaign's orchestrator — hermetic tests drive fake
        shard workers through the whole service stack with these.
    on_event:
        Callback receiving human-readable progress lines (``None`` = silent).
    """

    def __init__(
        self,
        journal_dir,
        *,
        backends: Optional[Sequence[ExecutionBackend]] = None,
        quotas: Optional[Dict[str, int]] = None,
        default_quota: Optional[int] = None,
        scale: str = "fast",
        cache_dir=None,
        max_retries: int = 2,
        stall_timeout: Optional[float] = None,
        poll_interval: float = 0.5,
        resume: bool = False,
        inject_kill_shard: Optional[int] = None,
        ingest_on_completion: bool = False,
        plan_factory: Optional[Callable[[CampaignSpec], object]] = None,
        command_factory: Optional[Callable[[Campaign], CommandFactory]] = None,
        on_event: Optional[Callable[[str], None]] = None,
    ) -> None:
        if scale not in SCALE_PRESETS:
            raise ServiceError(f"unknown scale {scale!r}; available: {sorted(SCALE_PRESETS)}")
        if poll_interval <= 0:
            raise ServiceError(f"poll interval must be > 0, got {poll_interval}")
        self.journal_dir = Path(journal_dir)
        self.backends: List[ExecutionBackend] = list(backends or [LocalProcessBackend()])
        self.dispatcher = ServiceDispatcher(
            BackendScheduler(self.backends), quotas=quotas, default_quota=default_quota
        )
        self.scale = scale
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.max_retries = int(max_retries)
        self.stall_timeout = stall_timeout
        self.poll_interval = float(poll_interval)
        self.resume = bool(resume)
        self.inject_kill_shard = inject_kill_shard
        self.ingest_on_completion = bool(ingest_on_completion)
        self.plan_factory = plan_factory
        self.command_factory = command_factory
        self.on_event = on_event
        self.campaigns: Dict[str, Campaign] = {}
        self._next_number = 1
        self._handle = None
        # Plan building trains (or cache-loads) pretrained baselines; two
        # campaigns planning at once could race to train the same policy,
        # so planning is serialized service-wide.
        self._plan_lock = asyncio.Lock()

    # ---------------------------------------------------------------- lifecycle
    async def start(self) -> List[Campaign]:
        """Prepare the roster, open the service journal, re-adopt if resuming.

        Returns the re-adopted campaigns (empty unless ``resume=True`` found
        unfinished submissions from a previous daemon life).
        """
        self.journal_dir.mkdir(parents=True, exist_ok=True)
        for backend in self.backends:
            backend.prepare(self.journal_dir)
        records = self._load_journal_records()
        for record in records:
            number = _campaign_number(record.get("id", ""))
            if number is not None:
                self._next_number = max(self._next_number, number + 1)
        self._handle = open(self._journal_path, "a", encoding="utf8")
        adopted: List[Campaign] = []
        if self.resume:
            for campaign_id, spec_payload in self._unfinished(records):
                try:
                    spec = CampaignSpec.from_dict(spec_payload)
                except ServiceError as error:
                    self._emit(f"{campaign_id}: not re-adopted — {error}")
                    continue
                campaign = await self.submit(spec, campaign_id=campaign_id, adopted=True)
                adopted.append(campaign)
                self._emit(
                    f"{campaign.id} {spec.label}: re-adopted — resuming from "
                    f"journals in {campaign.dir}"
                )
        return adopted

    async def close(self) -> None:
        """Stop every active campaign *without* journaling a terminal state.

        Daemon shutdown is not cancellation: the in-flight campaigns keep
        their submitted-but-unfinished journal records, which is exactly what
        a later ``resume=True`` start re-adopts.
        """
        active = [c for c in self.campaigns.values() if c.task is not None and not c.finished]
        for campaign in active:
            campaign.task.cancel()
        if active:
            await asyncio.gather(*(c.task for c in active), return_exceptions=True)
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # --------------------------------------------------------------- submission
    async def submit(
        self,
        spec: CampaignSpec,
        *,
        campaign_id: Optional[str] = None,
        adopted: bool = False,
    ) -> Campaign:
        """Accept one campaign and start driving it; returns immediately.

        Raises :class:`ServiceError` if the label is already in flight —
        naming the in-flight campaign's plan fingerprint, so the caller can
        tell "same plan, wait for it" from "different plan, pick a label".
        """
        if self._handle is None:
            raise ServiceError("service not started (call start() first)")
        spec.validate()
        active = self._active_by_label(spec.label)
        if active is not None:
            raise ServiceError(
                f"label {spec.label!r} is already in flight as campaign {active.id} "
                f"(plan fingerprint {active.fingerprint or 'pending'}); cancel it "
                "or submit under a different label"
            )
        if campaign_id is None:
            campaign_id = f"c{self._next_number:04d}"
            self._next_number += 1
        campaign = Campaign(
            id=campaign_id,
            spec=spec,
            dir=self.journal_dir / spec.label,
            adopted=adopted,
        )
        for shard in self._shard_specs(spec):
            campaign.probers[shard.describe()] = JournalProgress(
                shard.journal_path(campaign.dir, spec.experiment_id)
            )
        self.campaigns[campaign.id] = campaign
        self._journal_record({"kind": "campaign", "id": campaign.id, "spec": spec.as_dict()})
        campaign.task = asyncio.ensure_future(self._run_campaign(campaign))
        self._emit(
            f"{campaign.id} {spec.label}: submitted (tenant {spec.tenant}, "
            f"priority {spec.priority}, {spec.shards} shard(s))"
        )
        return campaign

    async def cancel(self, target: str) -> Campaign:
        """Cancel an in-flight campaign by id or label and journal the fact.

        The campaign task's cancellation unwinds through the orchestrator's
        cleanup, which kills every in-flight shard attempt (process groups
        and remote jobs alike) before this method journals the ``cancelled``
        record with the per-shard cell counts that survive in the journals.
        """
        campaign = self.resolve(target)
        if campaign.finished:
            raise ServiceError(
                f"campaign {campaign.id} ({campaign.spec.label}) is already "
                f"{campaign.state} and cannot be cancelled"
            )
        campaign.task.cancel()
        await asyncio.gather(campaign.task, return_exceptions=True)
        campaign.state = "cancelled"
        campaign.error = "cancelled by request"
        self._journal_terminal(campaign)
        self._emit(f"{campaign.id} {campaign.spec.label}: cancelled")
        return campaign

    # ------------------------------------------------------------------ running
    async def _run_campaign(self, campaign: Campaign) -> None:
        """Drive one campaign: plan, orchestrate, merge, save, journal."""
        spec = campaign.spec
        started = time.monotonic()
        try:
            campaign.state = "planning"
            runner = self._runner_for(spec, campaign.dir)
            async with self._plan_lock:
                if self.plan_factory is not None:
                    plan = self.plan_factory(spec)
                else:
                    plan = await asyncio.to_thread(runner.plan, spec.experiment_id)
            campaign.fingerprint = plan_fingerprint(plan)
            orchestrator = ShardOrchestrator(
                spec.experiment_id,
                spec.shards,
                runner,
                plan=plan,
                scheduler=_CampaignScheduler(self.dispatcher, campaign),
                prepare_backends=False,
                shard_args=self._shard_args(spec),
                max_retries=self.max_retries,
                stall_timeout=self.stall_timeout,
                poll_interval=self.poll_interval,
                inject_kill_shard=self.inject_kill_shard,
                command_factory=(
                    self.command_factory(campaign) if self.command_factory is not None else None
                ),
                on_event=lambda message: self._campaign_event(campaign, message),
            )
            campaign.state = "running"
            report = await orchestrator.run_async()
            campaign.report = report
            if report.result is not None:
                await asyncio.to_thread(
                    _save_result, campaign.dir, spec.experiment_id, report.result
                )
            if self.ingest_on_completion:
                await asyncio.to_thread(self._ingest, campaign)
            campaign.duration_seconds = time.monotonic() - started
            campaign.state = "merged"
            self._journal_terminal(campaign)
            self._emit(f"{campaign.id} {spec.label}: merged")
        except asyncio.CancelledError:
            # cancel() / close() own the terminal bookkeeping; the journal
            # record (or its deliberate absence, for shutdown) is theirs.
            campaign.duration_seconds = time.monotonic() - started
            raise
        except Exception as error:
            campaign.duration_seconds = time.monotonic() - started
            campaign.state = "failed"
            campaign.error = str(error)
            self._journal_terminal(campaign)
            self._emit(f"{campaign.id} {spec.label}: FAILED — {error}")

    def _runner_for(self, spec: CampaignSpec, campaign_dir: Path) -> CampaignRunner:
        """The per-campaign runner (plan building + shard merging)."""
        scale = spec.scale or self.scale
        gridworld_factory, drone_factory = SCALE_PRESETS[scale]
        gridworld_scale = gridworld_factory()
        drone_scale = drone_factory()
        if spec.seed is not None:
            gridworld_scale = gridworld_scale.with_seed(spec.seed)
            drone_scale = drone_scale.with_seed(spec.seed)
        return CampaignRunner(
            gridworld_scale=gridworld_scale,
            drone_scale=drone_scale,
            cache=PolicyCache(self.cache_dir) if self.cache_dir is not None else None,
            journal_dir=campaign_dir,
            vectorize=spec.vectorize,
        )

    def _shard_args(self, spec: CampaignSpec) -> List[str]:
        """The CLI arguments each shard subprocess inherits from the spec."""
        forwarded = ["--scale", spec.scale or self.scale]
        forwarded += ["--workers", str(spec.workers_per_shard)]
        if spec.batch_cells > 1:
            forwarded += ["--batch-cells", str(spec.batch_cells)]
        if spec.vectorize != "auto":
            forwarded += ["--vectorize", spec.vectorize]
        if spec.seed is not None:
            forwarded += ["--seed", str(spec.seed)]
        if self.cache_dir is not None:
            forwarded += ["--cache-dir", str(self.cache_dir)]
        return forwarded

    def _shard_specs(self, spec: CampaignSpec) -> List[ShardSpec]:
        """The shard coordinates of one submission."""
        return [ShardSpec(index, spec.shards) for index in range(1, spec.shards + 1)]

    def _ingest(self, campaign: Campaign) -> None:
        """Fold the campaign's journal directory into the shared result store."""
        from repro.runtime.store import ResultStore

        with ResultStore(self.journal_dir / "store.sqlite") as store:
            store.ingest(campaign.dir)

    # ------------------------------------------------------------------- status
    def resolve(self, target: str) -> Campaign:
        """The campaign named by ``target`` — an id first, then a label.

        Labels can recur across finished campaigns; the newest submission
        wins, matching what "status fig6a" should mean operationally.
        """
        campaign = self.campaigns.get(target)
        if campaign is not None:
            return campaign
        matches = [c for c in self.campaigns.values() if c.spec.label == target]
        if matches:
            return matches[-1]
        raise ServiceError(f"no campaign with id or label {target!r}")

    def _active_by_label(self, label: str) -> Optional[Campaign]:
        """The in-flight campaign holding ``label``, if any."""
        for campaign in self.campaigns.values():
            if campaign.spec.label == label and not campaign.finished:
                return campaign
        return None

    def progress(self, campaign: Campaign) -> Dict[str, int]:
        """Per-shard completed-cell counts, polled O(new bytes) per shard."""
        return {
            shard: prober.poll() for shard, prober in sorted(campaign.probers.items())
        }

    def campaign_status(self, campaign: Campaign) -> dict:
        """The JSON status of one campaign, as served by the API."""
        return {
            "id": campaign.id,
            "label": campaign.spec.label,
            "experiment_id": campaign.spec.experiment_id,
            "tenant": campaign.spec.tenant,
            "priority": campaign.spec.priority,
            "state": campaign.state,
            "fingerprint": campaign.fingerprint,
            "shards": self.progress(campaign),
            "error": campaign.error,
            "adopted": campaign.adopted,
            "duration_seconds": round(campaign.duration_seconds, 3),
            "events": list(campaign.events)[-10:],
        }

    def describe(self) -> dict:
        """Service-wide JSON status: roster, quotas, campaign states."""
        states: Dict[str, int] = {}
        for campaign in self.campaigns.values():
            states[campaign.state] = states.get(campaign.state, 0) + 1
        return {
            "journal_dir": str(self.journal_dir),
            "backends": [backend.describe() for backend in self.backends],
            "total_slots": self.dispatcher.scheduler.total_slots,
            "quotas": [
                {"tenant": tenant, "quota": quota, "in_use": in_use}
                for tenant, quota, in_use in self.dispatcher.queue.describe_quotas()
            ],
            "campaigns": {state: states[state] for state in sorted(states)},
        }

    def render_dry_run(self) -> str:
        """The resolved roster and quota table, for ``serve --dry-run``."""
        lines = [f"journal store: {self.journal_dir}"]
        lines.append(f"backends: {self.dispatcher.scheduler.describe()}")
        total = self.dispatcher.scheduler.total_slots
        lines.append(f"total slots: {'unbounded' if total is None else total}")
        quota_rows = self.dispatcher.queue.describe_quotas()
        if quota_rows:
            lines.append("quotas (max concurrent shard attempts per tenant):")
            for tenant, quota, _ in quota_rows:
                lines.append(f"  {tenant:16s} {quota}")
        else:
            lines.append("quotas: none (every tenant unbounded)")
        lines.append("dry run: nothing started")
        return "\n".join(lines)

    async def stream(self, campaign: Campaign, *, poll_interval: Optional[float] = None):
        """Async iterator of tail events for one campaign.

        Yields a ``snapshot`` event first, then a ``progress`` event per
        shard whose journaled cell count changed, and finally one ``state``
        event when the campaign reaches a terminal state (then stops).
        Multiple consumers can stream one campaign: each holds its own
        cursor dict, while cell counts come from the shared probers.
        """
        interval = self.poll_interval if poll_interval is None else float(poll_interval)
        yield {"event": "snapshot", **self.campaign_status(campaign)}
        seen: Dict[str, int] = {}
        while True:
            # Snapshot the terminal state *before* polling: progress events
            # always land before the final state event even if the campaign
            # finishes mid-poll.
            finished = campaign.finished
            for shard, cells in sorted(self.progress(campaign).items()):
                if seen.get(shard) != cells:
                    seen[shard] = cells
                    yield {
                        "event": "progress",
                        "id": campaign.id,
                        "label": campaign.spec.label,
                        "shard": shard,
                        "cells": cells,
                    }
            if finished:
                yield {
                    "event": "state",
                    "id": campaign.id,
                    "label": campaign.spec.label,
                    "state": campaign.state,
                    "fingerprint": campaign.fingerprint,
                    "error": campaign.error,
                }
                return
            await asyncio.sleep(interval)

    # ------------------------------------------------------------ service journal
    @property
    def _journal_path(self) -> Path:
        """The service's own submission/state journal file."""
        return self.journal_dir / SERVICE_JOURNAL_NAME

    def _load_journal_records(self) -> List[dict]:
        """Parse the service journal tail-tolerantly (crash-safe reads)."""
        try:
            raw = self._journal_path.read_bytes()
        except OSError:
            return []
        records: List[dict] = []
        for line in raw.split(b"\n")[:-1]:
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # The partial trailing write of a mid-kill; everything after
                # it is unreadable by construction (append-only file).
                break
            if isinstance(record, dict):
                records.append(record)
        return records

    def _unfinished(self, records: List[dict]) -> List[tuple]:
        """``(campaign_id, spec_payload)`` for submissions with no terminal record."""
        specs: Dict[str, dict] = {}
        done = set()
        order: List[str] = []
        for record in records:
            campaign_id = record.get("id")
            if not campaign_id:
                continue
            if record.get("kind") == "campaign":
                if campaign_id not in specs:
                    order.append(campaign_id)
                specs[campaign_id] = record.get("spec") or {}
                done.discard(campaign_id)
            elif record.get("kind") == "state" and record.get("state") in TERMINAL_STATES:
                done.add(campaign_id)
        return [(campaign_id, specs[campaign_id]) for campaign_id in order if campaign_id not in done]

    def _journal_record(self, record: dict) -> None:
        """Append one fsynced record to the service journal."""
        line = json.dumps(record, sort_keys=True)
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def _journal_terminal(self, campaign: Campaign) -> None:
        """Journal a campaign's terminal state (merged/failed/cancelled)."""
        self._journal_record(
            {
                "kind": "state",
                "id": campaign.id,
                "label": campaign.spec.label,
                "state": campaign.state,
                "fingerprint": campaign.fingerprint,
                "error": campaign.error,
                "cells_completed": self.progress(campaign),
                "duration_seconds": round(campaign.duration_seconds, 3),
            }
        )

    # ------------------------------------------------------------------- events
    def _emit(self, message: str) -> None:
        """Send one progress line to the ``on_event`` callback, if any."""
        if self.on_event is not None:
            self.on_event(message)

    def _campaign_event(self, campaign: Campaign, message: str) -> None:
        """Record one orchestrator progress line against its campaign."""
        campaign.events.append(message)
        self._emit(f"{campaign.id} {campaign.spec.label}: {message}")


def _campaign_number(campaign_id: str) -> Optional[int]:
    """The numeric part of a ``cNNNN`` campaign id, or ``None``."""
    match = re.fullmatch(r"c(\d+)", campaign_id or "")
    return int(match.group(1)) if match else None


def _save_result(output_dir: Path, name: str, result) -> None:
    """Save a merged result as ``<name>.txt``/``<name>.json`` (CLI layout).

    Byte-identical to what ``repro-campaign ... --output`` writes for the
    same result, which is what lets CI diff a served campaign's payload
    against a one-shot run with plain ``diff``.
    """
    output_dir.mkdir(parents=True, exist_ok=True)
    text = result.render() if hasattr(result, "render") else str(result)
    (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf8")
    if hasattr(result, "as_dict"):
        save_json(output_dir / f"{name}.json", result.as_dict())


__all__ = [
    "Campaign",
    "CampaignService",
    "CampaignSpec",
    "SCALE_PRESETS",
    "SERVICE_JOURNAL_NAME",
    "ServiceError",
    "TERMINAL_STATES",
]
