"""Capacity-aware assignment of shard attempts to execution backends.

The orchestrator runs every shard concurrently, but backends declare how
many attempts they can hold (``ExecutionBackend.slots``).
:class:`BackendScheduler` is the admission controller in between:

* :meth:`~BackendScheduler.acquire` hands out one slot, preferring the
  backend with the most free capacity (ties broken by declaration order, so
  ``--backend`` order is meaningful); when every backend is saturated the
  caller queues on an ``asyncio.Condition`` until a slot frees;
* **backend failover** — ``acquire(avoid=backend)`` is how retries steer
  away from the backend whose attempt just failed: the scheduler *never*
  hands back the avoided backend while other backends are configured, even
  if that means waiting for one of their slots (a failed backend may be a
  failed machine).  With a single backend configured there is nowhere else
  to go and the avoided backend is reused;
* :meth:`~BackendScheduler.plan_assignments` computes the deterministic
  assignment preview shown by ``orchestrate --dry-run`` — the assignment the
  live scheduler would make if shards completed in launch order.

The scheduler assigns *attempts*, not cells: partitioning stays
``ShardSpec``'s job and merging stays ``merge_shards``'s, so capacity
decisions can never affect which cells run or what the merged payload holds.
"""

from __future__ import annotations

import asyncio
import math
from collections import deque
from typing import Dict, List, Optional, Sequence

from repro.runtime.backends import ExecutionBackend


class BackendScheduler:
    """Slot accounting and saturation queueing over a roster of backends."""

    def __init__(self, backends: Sequence[ExecutionBackend]) -> None:
        if not backends:
            raise ValueError("scheduler needs at least one backend")
        self._backends: List[ExecutionBackend] = list(backends)
        self._in_use: Dict[int, int] = {id(backend): 0 for backend in self._backends}
        self._condition = asyncio.Condition()

    @property
    def backends(self) -> List[ExecutionBackend]:
        """The backend roster, in declaration (CLI) order."""
        return list(self._backends)

    @property
    def total_slots(self) -> Optional[int]:
        """Total declared capacity, or ``None`` if any backend is unbounded."""
        if any(backend.slots is None for backend in self._backends):
            return None
        return sum(backend.slots for backend in self._backends)

    def describe(self) -> str:
        """One-line roster summary for progress output."""
        return ", ".join(backend.describe() for backend in self._backends)

    # ------------------------------------------------------------- accounting
    def free_slots(self, backend: ExecutionBackend) -> float:
        """Free capacity of ``backend`` (``math.inf`` when unbounded)."""
        if backend.slots is None:
            return math.inf
        return backend.slots - self._in_use[id(backend)]

    def _pick(self, avoid: Optional[ExecutionBackend]) -> Optional[ExecutionBackend]:
        """The backend a new attempt should run on right now, or ``None``.

        Most-free-slots wins; ties go to declaration order.  ``avoid`` is
        excluded whenever any other backend exists (saturated or not) — the
        caller waits for one of the others instead of landing back on the
        backend that just failed the shard.
        """
        candidates = [backend for backend in self._backends if self.free_slots(backend) > 0]
        if avoid is not None and len(self._backends) > 1:
            candidates = [backend for backend in candidates if backend is not avoid]
        if not candidates:
            return None
        return max(candidates, key=self.free_slots)

    def has_free_slot(self, *, avoid: Optional[ExecutionBackend] = None) -> bool:
        """Whether :meth:`acquire` would currently return without waiting."""
        return self._pick(avoid) is not None

    async def acquire(self, *, avoid: Optional[ExecutionBackend] = None) -> ExecutionBackend:
        """Take one slot, waiting while all (eligible) backends are saturated."""
        async with self._condition:
            while True:
                backend = self._pick(avoid)
                if backend is not None:
                    self._in_use[id(backend)] += 1
                    return backend
                await self._condition.wait()

    async def release(self, backend: ExecutionBackend) -> None:
        """Return a slot taken by :meth:`acquire` and wake queued acquirers."""
        async with self._condition:
            self.release_nowait(backend)
            self._condition.notify_all()

    # -------------------------------------------------- external-lock variants
    def try_acquire(self, *, avoid: Optional[ExecutionBackend] = None) -> Optional[ExecutionBackend]:
        """Take a slot synchronously if one is free; ``None`` when saturated.

        For callers that serialize slot decisions under their *own* lock —
        the campaign service's dispatcher holds one condition over this
        scheduler and its admission queue so grant order is deterministic.
        Pair with :meth:`release_nowait`; such callers must do their own
        waking, because no scheduler-side condition round-trip happens here.
        """
        backend = self._pick(avoid)
        if backend is not None:
            self._in_use[id(backend)] += 1
        return backend

    def release_nowait(self, backend: ExecutionBackend) -> None:
        """Synchronous slot return: accounting only, wakes no queued acquirer.

        :meth:`release` (which notifies coroutines queued in :meth:`acquire`)
        delegates here; external-lock callers pair it with
        :meth:`try_acquire` and notify their own waiters.
        """
        if self._in_use[id(backend)] < 1:
            raise RuntimeError(f"release without acquire for backend {backend.name!r}")
        self._in_use[id(backend)] -= 1

    # ----------------------------------------------------------------- dry run
    def plan_assignments(self, count: int) -> List[ExecutionBackend]:
        """Deterministic first-attempt assignment preview for ``count`` shards.

        Simulates :meth:`acquire` in shard order with the same
        most-free-slots rule; when every slot is taken, the oldest
        outstanding attempt is assumed to finish first (FIFO).  This is
        exactly the live assignment when shards complete in launch order —
        a preview for ``--dry-run``, not a promise.
        """
        free = {id(backend): self.free_slots(backend) for backend in self._backends}
        outstanding: deque = deque()
        assignments: List[ExecutionBackend] = []
        for _ in range(count):
            if all(free[id(backend)] <= 0 for backend in self._backends):
                oldest = outstanding.popleft()
                free[id(oldest)] += 1
            backend = max(
                (b for b in self._backends if free[id(b)] > 0),
                key=lambda b: free[id(b)],
            )
            free[id(backend)] -= 1
            outstanding.append(backend)
            assignments.append(backend)
        return assignments
