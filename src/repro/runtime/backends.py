"""Pluggable execution backends: where a shard attempt actually runs.

PR 4's orchestrator hard-coded ``asyncio.create_subprocess_exec`` — every
shard attempt was a local subprocess.  This module promotes the launch seam
into a first-class abstraction so shards of one campaign can run on a mix of
executors:

* :class:`LocalProcessBackend` — a local subprocess (the PR 4 behaviour, and
  the default);
* :class:`SSHBackend` — the same argv executed on a remote host over
  ``ssh host -- ...`` (the host must see the shared journal store and have
  the package importable);
* :class:`SlurmBackend` — submit via ``sbatch``, poll via ``squeue``, reap
  the outcome via ``sacct``, cancel via ``scancel``.  Every Slurm command
  goes through an injectable *command runner*, so the backend is fully
  exercisable in tests against the fake-slurm shim in ``tools/fake_slurm/``
  (or scripted responses) — no cluster needed.

The contract is deliberately thin.  A backend turns an argv into a
:class:`ShardLaunch` handle with ``wait`` / ``kill`` / ``stderr``; *progress*
is never the backend's job — the orchestrator keeps tailing the shard journal
files, which only requires that every backend shares the journal filesystem.
That is what keeps the byte-identity invariant backend-mix-independent: the
journals, not the backends, are the wire protocol.

This module is also the single source of truth for shard argv construction:
:func:`shard_argv` builds the canonical ``--shard k/n`` command used by the
orchestrator's launches *and* by the ``--emit-slurm`` / ``--emit-k8s``
template renderers (:func:`render_slurm_script`, :func:`render_k8s_manifest`).

CLI spelling: ``--backend NAME[:SLOTS][,KEY=VALUE...]`` — e.g. ``local:4``,
``ssh:2,host=node7``, ``slurm:16,bin_dir=/opt/slurm/bin,workers=8`` — parsed
by :meth:`BackendSpec.parse` and instantiated by :func:`build_backend`.  The
``workers=M`` option (any kind) overrides the campaign-wide
``--workers-per-shard`` pool size for attempts that backend runs.
"""

from __future__ import annotations

import abc
import asyncio
import itertools
import os
import shlex
import signal
from dataclasses import dataclass
from pathlib import Path
from typing import Awaitable, Callable, Dict, List, Optional, Sequence, Tuple


class BackendError(RuntimeError):
    """A backend spec is invalid, or a backend could not launch or track a job."""


# --------------------------------------------------------------- shard argv
def shard_argv(
    experiment_id: str,
    shard: str,
    journal_dir,
    *,
    shard_args: Sequence[str] = (),
    resume: bool = False,
    program: Sequence[str] = ("repro-campaign",),
) -> List[str]:
    """The canonical argv for one ``--shard`` run.

    Single source of truth for shard command construction: the orchestrator
    launches exactly this argv (with ``program`` set to ``python -m
    repro.runtime.cli``), and the Slurm/Kubernetes template renderers render
    it (with ``shard`` left as a scheduler variable like
    ``${SLURM_ARRAY_TASK_ID}/16``).
    """
    argv = [
        *program,
        experiment_id,
        "--shard",
        str(shard),
        "--journal-dir",
        str(journal_dir),
        *[str(arg) for arg in shard_args],
    ]
    if resume:
        argv.append("--resume")
    return argv


def render_shell_command(argv: Sequence[str]) -> str:
    """Render an argv for a shell template, preserving ``$`` expansions.

    Tokens containing ``${`` or ``$((`` (scheduler variables like
    ``${SLURM_ARRAY_TASK_ID}/16``) are double-quoted so the shell still
    expands them; everything else is ``shlex``-quoted.
    """
    rendered = []
    for token in argv:
        if "${" in token or "$((" in token:
            rendered.append(f'"{token}"')
        else:
            rendered.append(shlex.quote(token))
    return " ".join(rendered)


# ------------------------------------------------------------------- handles
class ShardLaunch(abc.ABC):
    """One in-flight shard attempt, as the orchestrator sees it.

    The orchestrator awaits :meth:`wait` concurrently with its journal-tail
    loop, calls :meth:`kill` for stall/chaos terminations, and reads
    :meth:`stderr` after the attempt ends to name the failure.  ``finished``
    must be cheap and non-blocking — it guards the never-orphan cleanup path.
    """

    @property
    @abc.abstractmethod
    def finished(self) -> bool:
        """Whether the attempt has terminated (return code known)."""

    @abc.abstractmethod
    async def wait(self) -> Optional[int]:
        """Block until the attempt terminates; return its exit code."""

    @abc.abstractmethod
    def kill(self) -> None:
        """Request termination of the attempt (idempotent, non-blocking)."""

    @abc.abstractmethod
    async def stderr(self) -> str:
        """The attempt's captured stderr (meaningful once ``finished``)."""

    async def close(self) -> None:
        """Reap the attempt's resources; must never raise."""
        await asyncio.gather(self.wait(), return_exceptions=True)


class _ProcessLaunch(ShardLaunch):
    """A :class:`ShardLaunch` over one local ``asyncio`` subprocess.

    The subprocess is its own session leader (``start_new_session``), so
    :meth:`kill` takes down the **whole process group** — a shard running a
    ``--workers N`` pool must lose its workers too, or the fork-inherited
    stderr pipe never reaches EOF (orphaned workers would both leak and
    deadlock the orchestrator's stderr drain).
    """

    def __init__(self, process: asyncio.subprocess.Process) -> None:
        self._process = process
        # Drain stderr concurrently so a chatty shard can never fill the pipe
        # and deadlock against the orchestrator's poll loop.
        self._stderr_task = asyncio.ensure_future(process.stderr.read())

    @property
    def finished(self) -> bool:
        """Whether the subprocess has exited."""
        return self._process.returncode is not None

    async def wait(self) -> Optional[int]:
        """Wait for the subprocess to exit and return its code."""
        return await self._process.wait()

    def kill(self) -> None:
        """SIGKILL the subprocess's whole process group (workers included)."""
        if self._process.returncode is not None:
            return
        try:
            os.killpg(self._process.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError, OSError):
            try:
                self._process.kill()
            except ProcessLookupError:
                pass

    async def stderr(self) -> str:
        """The subprocess's full stderr, decoded."""
        data = await asyncio.gather(self._stderr_task, return_exceptions=True)
        return data[0].decode("utf8", errors="replace") if isinstance(data[0], bytes) else ""

    async def close(self) -> None:
        """Reap the subprocess and its stderr pipe; never raises."""
        await asyncio.gather(self._process.wait(), self._stderr_task, return_exceptions=True)


# ------------------------------------------------------------------ backends
class ExecutionBackend(abc.ABC):
    """Something that can run a shard attempt given its argv.

    ``slots`` declares how many attempts the backend runs concurrently
    (``None`` = unbounded); the scheduler enforces it.  ``name`` labels the
    backend in reports, dry-run output, and failover decisions.  ``workers``
    (``--backend NAME:SLOTS,workers=M``) overrides the campaign-wide
    ``--workers-per-shard`` pool size for attempts this backend runs, so a
    big cluster node can use more pool workers than a laptop-class host.
    """

    #: Registry key / CLI spelling of the backend class (``--backend KIND``).
    kind = "backend"

    def __init__(
        self,
        *,
        slots: Optional[int] = None,
        name: Optional[str] = None,
        workers: Optional[int] = None,
    ) -> None:
        if slots is not None and slots < 1:
            raise BackendError(f"backend slots must be >= 1, got {slots}")
        if workers is not None and workers < 1:
            raise BackendError(f"backend workers must be >= 1, got {workers}")
        self.slots = slots
        self.workers = workers
        self.name = name or self.kind

    @abc.abstractmethod
    async def launch(self, command: Sequence[str], *, env: Optional[dict] = None) -> ShardLaunch:
        """Start one shard attempt running ``command``; return its handle."""

    def prepare(self, journal_dir) -> None:
        """Hook run once before any launch; defaults backend scratch paths."""

    def shard_program(self) -> Optional[List[str]]:
        """Override of the shard command's program prefix, or ``None``.

        The orchestrator's default program is its own ``sys.executable -m
        repro.runtime.cli`` — a machine-local path.  Backends that execute on
        a *different* machine return the program that exists there instead
        (see :meth:`SSHBackend.shard_program`).
        """
        return None

    def describe(self) -> str:
        """Human-readable label: name, declared capacity, workers override."""
        capacity = "unbounded" if self.slots is None else str(self.slots)
        # The workers suffix appears only when the override is set, so the
        # default spelling (and everything keyed on it) stays unchanged.
        workers = f",workers={self.workers}" if self.workers is not None else ""
        return f"{self.name}[slots={capacity}{workers}]"

    @classmethod
    def from_spec(cls, spec: "BackendSpec") -> "ExecutionBackend":
        """Build an instance from a parsed CLI :class:`BackendSpec`."""
        raise NotImplementedError

    @staticmethod
    def _reject_unknown_options(spec: "BackendSpec", allowed: Sequence[str]) -> None:
        """Raise :class:`BackendError` naming any option key not in ``allowed``."""
        unknown = sorted(set(spec.options) - set(allowed))
        if unknown:
            raise BackendError(
                f"backend {spec.kind!r} does not accept option(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )

    @staticmethod
    def _workers_from_spec(spec: "BackendSpec") -> Optional[int]:
        """The parsed ``workers=M`` option of a spec, or ``None`` if absent."""
        text = spec.options.get("workers")
        if text is None:
            return None
        try:
            return int(text)
        except ValueError:
            raise BackendError(f"backend workers must be an integer, got {text!r}")


class LocalProcessBackend(ExecutionBackend):
    """Run shard attempts as local subprocesses (the default backend)."""

    kind = "local"

    def wrap_command(self, command: Sequence[str]) -> List[str]:
        """The argv actually executed locally (identity for local runs)."""
        return list(command)

    async def launch(self, command: Sequence[str], *, env: Optional[dict] = None) -> ShardLaunch:
        """Spawn the shard argv as a local subprocess (own process group)."""
        process = await asyncio.create_subprocess_exec(
            *self.wrap_command(command),
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
            env=env,
            start_new_session=True,
        )
        return _ProcessLaunch(process)

    @classmethod
    def from_spec(cls, spec: "BackendSpec") -> "LocalProcessBackend":
        """``--backend local[:slots][,workers=M][,name=...]``."""
        cls._reject_unknown_options(spec, ("name", "workers"))
        return cls(
            slots=spec.slots,
            name=spec.options.get("name"),
            workers=cls._workers_from_spec(spec),
        )


class SSHBackend(LocalProcessBackend):
    """Run shard attempts on a remote host over ``ssh host -- ...``.

    The remote host must share the journal filesystem (journals are the only
    progress and result channel) and have the package importable by its own
    interpreter: the shard program runs as ``<python> -m repro.runtime.cli``
    where ``python`` (default ``python3``) names the *remote* interpreter —
    the orchestrator's local ``sys.executable`` path and ``PYTHONPATH`` do
    not exist on (and are not forwarded to) the remote side.  Killing an
    attempt kills the local ``ssh`` client; the remote command loses its
    connection and is terminated by sshd.

    :meth:`prepare` runs a cheap connection preflight (``ssh host -- true``)
    so a dead or misconfigured host fails the campaign at startup instead of
    on its first shard attempt; ``preflight=off`` skips it.
    """

    kind = "ssh"

    #: Seconds the startup preflight waits for ``ssh host -- true``.
    PREFLIGHT_TIMEOUT = 30.0

    def __init__(
        self,
        host: str,
        *,
        slots: Optional[int] = None,
        name: Optional[str] = None,
        workers: Optional[int] = None,
        ssh_command: str = "ssh",
        python: str = "python3",
        preflight: bool = True,
    ) -> None:
        if not host:
            raise BackendError("ssh backend requires a host (e.g. --backend ssh:2,host=node7)")
        super().__init__(slots=slots, name=name or f"ssh:{host}", workers=workers)
        self.host = host
        self.ssh_command = ssh_command
        self.python = python
        self.preflight = preflight

    def prepare(self, journal_dir) -> None:
        """Preflight the connection: a dead host must fail at startup.

        Runs ``<ssh> -o BatchMode=yes <host> -- true`` synchronously (shard
        attempts haven't launched yet, so blocking is fine) and raises
        :class:`BackendError` with the host and ssh's own stderr on any
        failure — unreachable host, rejected key, or a hung connection
        exceeding :data:`PREFLIGHT_TIMEOUT`.
        """
        if not self.preflight:
            return
        import subprocess

        argv = self.wrap_command(["true"])
        try:
            completed = subprocess.run(
                argv,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                timeout=self.PREFLIGHT_TIMEOUT,
            )
        except subprocess.TimeoutExpired:
            raise BackendError(
                f"backend {self.name}: connection preflight to {self.host!r} hung for "
                f"{self.PREFLIGHT_TIMEOUT:.0f}s (disable with preflight=off)"
            )
        except OSError as error:
            raise BackendError(
                f"backend {self.name}: cannot run {argv[0]!r} for the connection "
                f"preflight: {error}"
            )
        if completed.returncode != 0:
            detail = completed.stderr.decode("utf8", errors="replace").strip()
            raise BackendError(
                f"backend {self.name}: connection preflight to {self.host!r} failed "
                f"(exit {completed.returncode})"
                + (f": {detail}" if detail else "")
                + " — fix the host or disable with preflight=off"
            )

    def shard_program(self) -> List[str]:
        """The remote-side shard program: ``<python> -m repro.runtime.cli``."""
        return [*shlex.split(self.python), "-m", "repro.runtime.cli"]

    def wrap_command(self, command: Sequence[str]) -> List[str]:
        """The local ``ssh`` argv that executes ``command`` on the host."""
        remote = " ".join(shlex.quote(str(token)) for token in command)
        return [*shlex.split(self.ssh_command), "-o", "BatchMode=yes", self.host, "--", remote]

    @classmethod
    def from_spec(cls, spec: "BackendSpec") -> "SSHBackend":
        """``--backend ssh[:slots],host=NODE[,workers=M][,ssh=CMD][,python=BIN][,preflight=off]``."""
        cls._reject_unknown_options(
            spec, ("name", "host", "ssh", "python", "workers", "preflight")
        )
        preflight_text = spec.options.get("preflight", "on").lower()
        if preflight_text not in ("on", "off"):
            raise BackendError(
                f"ssh preflight must be 'on' or 'off', got {spec.options['preflight']!r}"
            )
        return cls(
            spec.options.get("host", ""),
            slots=spec.slots,
            name=spec.options.get("name"),
            workers=cls._workers_from_spec(spec),
            ssh_command=spec.options.get("ssh", "ssh"),
            python=spec.options.get("python", "python3"),
            preflight=preflight_text == "on",
        )


#: ``async (argv, env) -> (returncode, stdout, stderr)`` — how SlurmBackend
#: executes ``sbatch``/``squeue``/``sacct``/``scancel``.  Injectable for tests.
CommandRunner = Callable[..., Awaitable[Tuple[int, str, str]]]


async def run_command(argv: Sequence[str], *, env: Optional[dict] = None) -> Tuple[int, str, str]:
    """Default :data:`CommandRunner`: run ``argv`` locally and capture output."""
    process = await asyncio.create_subprocess_exec(
        *argv,
        stdout=asyncio.subprocess.PIPE,
        stderr=asyncio.subprocess.PIPE,
        env=env,
    )
    stdout, stderr = await process.communicate()
    return (
        process.returncode,
        stdout.decode("utf8", errors="replace"),
        stderr.decode("utf8", errors="replace"),
    )


#: sacct states that mean "the job has not finished" — they keep the wait
#: loop polling instead of being mistaken for a failed terminal state (a job
#: can vanish from squeue transiently while sacct still says RUNNING).
_SLURM_NONTERMINAL_STATES = (
    "RUNNING",
    "PENDING",
    "REQUEUED",
    "RESIZING",
    "SUSPENDED",
    "COMPLETING",
)


class SlurmLaunch(ShardLaunch):
    """A shard attempt living as one Slurm job.

    ``wait`` polls ``squeue`` while the job is queued/running, and only
    returns once ``sacct`` reports a genuinely *terminal* state — a job
    missing from ``squeue`` (slurmctld hiccup, accounting lag) is not assumed
    dead while ``sacct`` still says RUNNING/PENDING, so one shard can never
    be double-launched.  ``kill`` requests a ``scancel``, which the poll loop
    issues (so ``kill`` stays non-blocking) and retries until it succeeds.
    """

    def __init__(self, backend: "SlurmBackend", job_id: str, stderr_path: Path, env=None) -> None:
        self._backend = backend
        self.job_id = job_id
        self._stderr_path = stderr_path
        self._env = env
        self._returncode: Optional[int] = None
        self._kill_requested = False
        self._cancelled = False

    @property
    def finished(self) -> bool:
        """Whether the job has reached a terminal state."""
        return self._returncode is not None

    def kill(self) -> None:
        """Request ``scancel`` of the job (issued by the poll loop)."""
        self._kill_requested = True

    async def wait(self) -> Optional[int]:
        """Poll the job until a terminal state; return its mapped exit code."""
        if self._returncode is not None:
            return self._returncode
        backend = self._backend
        missing_record = 0
        while True:
            if self._kill_requested and not self._cancelled:
                returncode, _, _ = await backend._run(
                    [backend.tool("scancel"), self.job_id], env=self._env
                )
                if returncode == 0:
                    self._cancelled = True  # a failed scancel retries next poll
            returncode, stdout, _ = await backend._run(
                [backend.tool("squeue"), "-h", "-j", self.job_id], env=self._env
            )
            if returncode == 0 and stdout.strip():
                await asyncio.sleep(backend.poll_interval)
                continue
            # The job left the queue (or squeue failed): consult accounting.
            line = await self._sacct_line()
            if line is None:
                missing_record += 1
                if missing_record >= 10:
                    # No accounting record after repeated tries: treat a
                    # cancelled job as killed, anything else as lost.
                    self._returncode = 137 if self._cancelled else 1
                    return self._returncode
                await asyncio.sleep(backend.poll_interval)
                continue
            state, _, exit_code = line.partition("|")
            state = state.strip().upper()
            if any(state.startswith(prefix) for prefix in _SLURM_NONTERMINAL_STATES):
                # squeue glitched but the job is alive per accounting: the
                # attempt is NOT over — keep polling.
                missing_record = 0
                await asyncio.sleep(backend.poll_interval)
                continue
            self._returncode = self._map_terminal(state, exit_code)
            return self._returncode

    async def _sacct_line(self) -> Optional[str]:
        """The job's first ``State|ExitCode`` accounting line, if any yet."""
        backend = self._backend
        returncode, stdout, _ = await backend._run(
            [backend.tool("sacct"), "-n", "-P", "-j", self.job_id, "-o", "State,ExitCode"],
            env=self._env,
        )
        if returncode != 0:
            return None
        return next((line for line in stdout.strip().splitlines() if line.strip()), None)

    @staticmethod
    def _map_terminal(state: str, exit_code: str) -> int:
        """Map a terminal sacct state + ``N:S`` exit code to a process code."""
        if state.startswith("CANCELLED"):
            return 137
        code, _, signal_text = exit_code.strip().partition(":")
        try:
            code_value, signal_value = int(code or 0), int(signal_text or 0)
        except ValueError:
            code_value, signal_value = 1, 0
        if signal_value:
            return 128 + signal_value
        if state.startswith("COMPLETED"):
            return code_value
        return code_value or 1

    async def stderr(self) -> str:
        """The job's stderr file contents (``sbatch --error`` target).

        The read runs on an executor thread: a shard's stderr log lives on
        the shared (often network) filesystem and can be arbitrarily large,
        and a synchronous read here would stall every other shard's poll
        loop (REP005 — the PR 5 deadlock class).
        """

        def _read() -> str:
            try:
                return self._stderr_path.read_text(encoding="utf8", errors="replace")
            except OSError:
                return ""

        return await asyncio.get_running_loop().run_in_executor(None, _read)

    async def close(self) -> None:
        """Ensure the job is not orphaned: cancel if unfinished, then reap."""
        if not self.finished:
            self.kill()
        await asyncio.gather(self.wait(), return_exceptions=True)


class SlurmBackend(ExecutionBackend):
    """Run shard attempts as Slurm jobs (``sbatch``/``squeue``/``sacct``).

    ``bin_dir`` prefixes the four Slurm tools — pointing it at
    ``tools/fake_slurm/`` runs the whole submit/poll/reap/cancel cycle
    against local processes, which is how tests and CI exercise this backend
    without a cluster.  ``command_runner`` replaces subprocess execution
    entirely for scripted unit tests.

    ``array=on`` batches concurrent launches into single ``sbatch --array``
    submissions: launches arriving within one :attr:`array_window` flush as
    one array job whose script dispatches on ``$SLURM_ARRAY_TASK_ID``, and
    each task is tracked as its own ``<base>_<k>`` job.  This collapses a
    64-shard wave from 64 scheduler round-trips to one, without changing the
    per-attempt wait/kill/stderr contract.
    """

    kind = "slurm"

    #: Seconds a launch waits for siblings before an ``array=on`` submission.
    ARRAY_WINDOW = 0.05

    def __init__(
        self,
        *,
        slots: Optional[int] = None,
        name: Optional[str] = None,
        workers: Optional[int] = None,
        bin_dir=None,
        work_dir=None,
        poll_interval: float = 2.0,
        sbatch_args: Sequence[str] = (),
        command_runner: Optional[CommandRunner] = None,
        array: bool = False,
        array_window: Optional[float] = None,
    ) -> None:
        super().__init__(slots=slots, name=name, workers=workers)
        if poll_interval <= 0:
            raise BackendError(f"slurm poll interval must be > 0, got {poll_interval}")
        self.bin_dir = Path(bin_dir) if bin_dir is not None else None
        self.work_dir = Path(work_dir) if work_dir is not None else None
        self.poll_interval = float(poll_interval)
        self.sbatch_args = list(sbatch_args)
        self.array = bool(array)
        self.array_window = self.ARRAY_WINDOW if array_window is None else float(array_window)
        if self.array_window < 0:
            raise BackendError(f"slurm array_window must be >= 0, got {array_window}")
        self._run: CommandRunner = command_runner or run_command
        self._counter = itertools.count(1)
        # Pending ``array=on`` launches: (command, env, future) triples waiting
        # for the current launch window to close and flush as one submission.
        self._pending: List[Tuple[List[str], Optional[dict], "asyncio.Future"]] = []
        self._flush_task: Optional["asyncio.Task"] = None

    def tool(self, tool: str) -> str:
        """The path of one Slurm tool, honouring ``bin_dir``."""
        return str(self.bin_dir / tool) if self.bin_dir is not None else tool

    def prepare(self, journal_dir) -> None:
        """Default the batch-script scratch dir into the shared journal store."""
        if self.work_dir is None:
            self.work_dir = Path(journal_dir) / "slurm"

    async def launch(self, command: Sequence[str], *, env: Optional[dict] = None) -> ShardLaunch:
        """Submit ``command`` as a Slurm job and return its handle.

        With ``array=on``, concurrent launches are held for a short window
        (:attr:`array_window` seconds) and flushed together as **one**
        ``sbatch --array`` submission — one scheduler round-trip for a whole
        wave of shards instead of one per shard.  A window that closes with a
        single launch falls back to a plain submission, so the option is
        always safe to enable.
        """
        if not self.array:
            return await self._submit_single(command, env)
        future: "asyncio.Future" = asyncio.get_event_loop().create_future()
        self._pending.append((list(command), env, future))
        if self._flush_task is None or self._flush_task.done():
            self._flush_task = asyncio.ensure_future(self._flush_after_window())
        return await future

    async def _flush_after_window(self) -> None:
        """Close the launch window and submit everything it collected."""
        await asyncio.sleep(self.array_window)
        pending, self._pending = self._pending, []
        # One submission per distinct environment: an array's tasks share env.
        groups: List[Tuple[Optional[dict], List[Tuple[List[str], "asyncio.Future"]]]] = []
        for command, env, future in pending:
            for group_env, members in groups:
                if group_env == env:
                    members.append((command, future))
                    break
            else:
                groups.append((env, [(command, future)]))
        for env, members in groups:
            try:
                if len(members) == 1:
                    launches = [await self._submit_single(members[0][0], env)]
                else:
                    launches = await self._submit_array([cmd for cmd, _ in members], env)
            except Exception as error:  # surface the failure to every waiter
                for _, future in members:
                    if not future.done():
                        future.set_exception(BackendError(str(error)))
                continue
            for (_, future), launch in zip(members, launches):
                if future.done():
                    # The waiter vanished (cancelled attempt): never orphan
                    # the already-submitted task.
                    asyncio.ensure_future(launch.close())
                else:
                    future.set_result(launch)

    def _scratch_paths(self, suffix: str = "") -> Tuple[Path, Path, Path, Path]:
        """Allocate (work_dir, script, stdout, stderr) paths for one submission."""
        work_dir = self.work_dir if self.work_dir is not None else Path(".") / "slurm"
        work_dir.mkdir(parents=True, exist_ok=True)
        tag = f"{self.name.replace('/', '_')}-{next(self._counter)}{suffix}"
        return (
            work_dir,
            work_dir / f"shard-{tag}.sh",
            work_dir / f"shard-{tag}.out",
            work_dir / f"shard-{tag}.err",
        )

    async def _sbatch(self, args: Sequence[str], env: Optional[dict]) -> str:
        """Run ``sbatch --parsable`` with ``args`` and return the job id."""
        returncode, stdout, stderr = await self._run(
            [self.tool("sbatch"), "--parsable", *args], env=env
        )
        if returncode != 0:
            raise BackendError(
                f"sbatch failed (exit {returncode}): {stderr.strip() or stdout.strip()}"
            )
        job_id = stdout.strip().splitlines()[-1].split(";")[0].strip() if stdout.strip() else ""
        if not job_id:
            raise BackendError("sbatch --parsable printed no job id")
        return job_id

    async def _submit_single(self, command: Sequence[str], env: Optional[dict]) -> ShardLaunch:
        """Write a batch script for ``command``, submit it, return the handle."""
        _, script, stdout_path, stderr_path = self._scratch_paths()
        script.write_text(
            "#!/bin/bash\nexec " + " ".join(shlex.quote(str(t)) for t in command) + "\n",
            encoding="utf8",
        )
        job_id = await self._sbatch(
            [f"--output={stdout_path}", f"--error={stderr_path}", *self.sbatch_args, str(script)],
            env,
        )
        return SlurmLaunch(self, job_id, stderr_path, env=env)

    async def _submit_array(
        self, commands: Sequence[Sequence[str]], env: Optional[dict]
    ) -> List[ShardLaunch]:
        """Submit ``commands`` as one ``sbatch --array`` job, one task each.

        The batch script dispatches on ``$SLURM_ARRAY_TASK_ID``; task ``k``
        becomes its own :class:`SlurmLaunch` under the id ``<base>_<k>``,
        which every Slurm tool accepts for per-task polling, accounting and
        cancellation — the wait/kill/reap contract is unchanged.
        """
        work_dir, script, _, _ = self._scratch_paths(suffix="-array")
        branches = []
        for index, command in enumerate(commands):
            quoted = " ".join(shlex.quote(str(t)) for t in command)
            branches.append(f"{index})\n  exec {quoted}\n  ;;")
        branches.append('*)\n  echo "unexpected SLURM_ARRAY_TASK_ID" >&2\n  exit 64\n  ;;')
        body = "\n".join(branches)
        script.write_text(
            f'#!/bin/bash\ncase "$SLURM_ARRAY_TASK_ID" in\n{body}\nesac\n', encoding="utf8"
        )
        stem = script.with_suffix("")
        job_id = await self._sbatch(
            [
                f"--output={stem}_%a.out",
                f"--error={stem}_%a.err",
                f"--array=0-{len(commands) - 1}",
                *self.sbatch_args,
                str(script),
            ],
            env,
        )
        return [
            SlurmLaunch(
                self,
                f"{job_id}_{index}",
                Path(f"{stem}_{index}.err"),
                env=env,
            )
            for index in range(len(commands))
        ]

    @classmethod
    def from_spec(cls, spec: "BackendSpec") -> "SlurmBackend":
        """``--backend slurm[:slots][,workers=M][,bin_dir=DIR][,work_dir=DIR][,poll=SECONDS][,array=on]``."""
        cls._reject_unknown_options(
            spec, ("name", "bin_dir", "work_dir", "poll", "workers", "array")
        )
        try:
            poll_interval = float(spec.options.get("poll", 2.0))
        except ValueError:
            raise BackendError(f"slurm poll must be a number, got {spec.options['poll']!r}")
        array_text = spec.options.get("array", "off").lower()
        if array_text not in ("on", "off"):
            raise BackendError(
                f"slurm array must be 'on' or 'off', got {spec.options['array']!r}"
            )
        return cls(
            slots=spec.slots,
            name=spec.options.get("name"),
            workers=cls._workers_from_spec(spec),
            bin_dir=spec.options.get("bin_dir"),
            work_dir=spec.options.get("work_dir"),
            poll_interval=poll_interval,
            array=array_text == "on",
        )


# ----------------------------------------------------------------- CLI specs
#: Backend kinds instantiable from the CLI, by their ``--backend`` spelling.
BACKEND_KINDS: Dict[str, type] = {
    LocalProcessBackend.kind: LocalProcessBackend,
    SSHBackend.kind: SSHBackend,
    SlurmBackend.kind: SlurmBackend,
}


@dataclass(frozen=True)
class BackendSpec:
    """One parsed ``--backend NAME[:SLOTS][,KEY=VALUE...]`` CLI spec."""

    kind: str
    slots: Optional[int]
    options: Dict[str, str]

    @classmethod
    def parse(cls, text: str) -> "BackendSpec":
        """Parse the CLI spelling, validating kind, slots, and option syntax."""
        head, *option_parts = str(text).strip().split(",")
        kind, _, slots_text = head.partition(":")
        kind = kind.strip()
        if kind not in BACKEND_KINDS:
            raise BackendError(
                f"unknown backend {kind!r}; available: {sorted(BACKEND_KINDS)}"
            )
        slots: Optional[int] = None
        if slots_text:
            try:
                slots = int(slots_text)
            except ValueError:
                raise BackendError(f"backend slots must be an integer, got {slots_text!r}")
            if slots < 1:
                raise BackendError(f"backend slots must be >= 1, got {slots}")
        options: Dict[str, str] = {}
        for part in option_parts:
            key, separator, value = part.partition("=")
            if not separator or not key.strip():
                raise BackendError(
                    f"backend option {part!r} is not KEY=VALUE (in spec {text!r})"
                )
            options[key.strip()] = value.strip()
        return cls(kind=kind, slots=slots, options=options)


def build_backend(spec) -> ExecutionBackend:
    """Instantiate one backend from a :class:`BackendSpec` or its CLI text."""
    if not isinstance(spec, BackendSpec):
        spec = BackendSpec.parse(spec)
    return BACKEND_KINDS[spec.kind].from_spec(spec)


def build_backends(specs: Sequence) -> List[ExecutionBackend]:
    """Instantiate a backend roster, disambiguating duplicate names.

    ``--backend local:1 --backend local:1`` is a natural thing to type when
    testing; the second instance becomes ``local#2`` so reports and failover
    logs stay unambiguous.
    """
    backends = [build_backend(spec) for spec in specs]
    seen: Dict[str, int] = {}
    for backend in backends:
        count = seen.get(backend.name, 0) + 1
        seen[backend.name] = count
        if count > 1:
            backend.name = f"{backend.name}#{count}"
    return backends


# ------------------------------------------------------------------ templates
def render_slurm_script(
    experiment_id: str,
    shard_count: int,
    *,
    journal_dir,
    workers_per_shard: int = 1,
    shard_args: Sequence[str] = (),
    time_limit: str = "04:00:00",
) -> str:
    """A ready-to-submit Slurm array-job script for an ``n``-way sharded run.

    Each array task runs one ``--shard k/n --resume`` invocation — the exact
    argv :func:`shard_argv` builds for the orchestrator's own launches — so
    Slurm's ``--requeue`` machinery resumes a preempted shard from its
    journal.  Merge afterwards with ``--merge-only`` from any node that sees
    ``journal_dir``.
    """
    command = render_shell_command(
        shard_argv(
            experiment_id,
            f"${{SLURM_ARRAY_TASK_ID}}/{shard_count}",
            journal_dir,
            shard_args=["--workers", str(workers_per_shard), *shard_args],
            resume=True,
        )
    )
    return f"""#!/bin/bash
#SBATCH --job-name=frlfi-{experiment_id}
#SBATCH --array=1-{shard_count}
#SBATCH --ntasks=1
#SBATCH --cpus-per-task={workers_per_shard}
#SBATCH --time={time_limit}
#SBATCH --requeue
# One array task per shard; --resume makes a requeued task continue from its
# journal in the shared store instead of recomputing finished cells.
{command}

# After the whole array completes, merge from any node:
#   repro-campaign {experiment_id} --merge-only \\
#     --journal-dir {shlex.quote(str(journal_dir))} --output results/
"""


def render_k8s_manifest(
    experiment_id: str,
    shard_count: int,
    *,
    journal_dir,
    workers_per_shard: int = 1,
    shard_args: Sequence[str] = (),
    image: str = "frl-fi-repro:latest",
    journal_claim: str = "frlfi-journals",
) -> str:
    """A ready-to-submit Kubernetes indexed-Job manifest for a sharded run.

    ``completionMode: Indexed`` gives each pod a ``JOB_COMPLETION_INDEX``
    which maps to ``--shard $((index+1))/n`` — again the exact
    :func:`shard_argv` command; ``restartPolicy: OnFailure`` plus ``--resume``
    means a rescheduled pod continues from its shard journal on the shared
    volume (``journal_claim``).  Merge afterwards with ``--merge-only`` from
    any pod mounting the same volume.
    """
    shard_command = render_shell_command(
        shard_argv(
            experiment_id,
            f"$((JOB_COMPLETION_INDEX + 1))/{shard_count}",
            journal_dir,
            shard_args=["--workers", str(workers_per_shard), *shard_args],
            resume=True,
        )
    )
    return f"""apiVersion: batch/v1
kind: Job
metadata:
  name: frlfi-{experiment_id}
spec:
  completions: {shard_count}
  parallelism: {shard_count}
  completionMode: Indexed
  backoffLimit: {shard_count * 3}
  template:
    spec:
      restartPolicy: OnFailure
      containers:
        - name: shard
          image: {image}
          command: ["/bin/sh", "-c"]
          args:
            - {shard_command}
          volumeMounts:
            - name: journals
              mountPath: {journal_dir}
      volumes:
        - name: journals
          persistentVolumeClaim:
            claimName: {journal_claim}
# After the Job completes, merge from any pod mounting the journal volume:
#   repro-campaign {experiment_id} --merge-only --journal-dir {journal_dir} --output results/
"""
