"""Streaming result persistence for campaign runs.

A :class:`CampaignJournal` is a per-artifact JSONL file that records every
completed cell output as soon as it is available.  A killed campaign can then
be restarted with ``repro-campaign <id> --resume``: already-journaled cells
are skipped and the merged payload is byte-identical to an uninterrupted run.
The same file format is the wire protocol for multi-machine sharding
(:mod:`repro.runtime.sharding`): each shard journals its disjoint subset of
cell indices to ``<label>.shard-<k>-of-<n>.jsonl`` and ``--merge-only`` folds
the shard journals back together without executing a cell.

File format — one JSON object per line:

* a header line ``{"kind": "header", "experiment_id": ..., "cell_count": ...,
  "fingerprint": ..., "fingerprint_version": ...}`` identifying the exact
  plan the journal belongs to (plus ``"shard": [k, n]`` for shard journals);
* cell lines ``{"kind": "cell", "index": ..., "key": [...], "output": ...}``
  in completion (not plan) order.

The fingerprint digests every cell's key and keyword arguments, so a journal
written for a different scale, seed or grid invalidates (with a logged
warning naming the file and the reason) instead of poisoning a resumed run.

**Fingerprint versioning.**  ``fingerprint_version`` records the digest
scheme a journal was written with; the current scheme is
:data:`FINGERPRINT_VERSION`.  Version 1 (PR 2) digested ``repr()`` of every
cell kwarg, which embedded machine-local state — notably the absolute
``cache_dir`` inside :class:`~repro.runtime.residency.PolicyRef` — so a
journal written on one machine (or before a policy-cache move) silently
mismatched everywhere else.  Version 2 digests kwargs through
:func:`fingerprint_token`, which lets values define an explicitly
machine-independent token (``PolicyRef`` contributes only ``(key, field)``),
and normalizes cell keys through a JSON round trip.  Old version-1 journals
(which carry no ``fingerprint_version`` field) are detected and *reported* as
stale rather than silently ignored.

Each line is flushed and fsynced when written; loading tolerates a truncated
or corrupt trailing line (the signature of a mid-write kill) by discarding
it.

Byte-identity across interruption (and across shard merges) is guaranteed by
construction: outputs are merged from their JSON-decoded form whether they
were just computed or read back from a journal, and JSON round trips floats
exactly.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Dict, Optional, TextIO, Tuple

from repro.utils.serialization import NumpyJSONEncoder

logger = logging.getLogger(__name__)

#: Current plan-fingerprint scheme.  Bump when the digest inputs change so
#: that journals written under an older scheme are reported as stale instead
#: of silently mismatching.  Version 1 (unversioned headers) digested raw
#: ``repr()`` of cell kwargs and was machine-dependent; see module docstring.
FINGERPRINT_VERSION = 2


def fingerprint_token(value) -> str:
    """The digest token for one cell keyword argument.

    Values that define a ``fingerprint_token()`` method (e.g.
    :class:`~repro.runtime.residency.PolicyRef`) provide an explicitly
    machine-independent token; everything else falls back to ``repr``, which
    is deterministic for the frozen dataclasses and scalars used in cell
    kwargs.
    """
    token = getattr(value, "fingerprint_token", None)
    if callable(token):
        return token()
    return repr(value)


def normalize_cell_key(key) -> list:
    """A cell key in its canonical JSON-native form.

    Journaled keys come back from ``json.loads`` as (possibly nested) lists,
    so the in-memory side must be normalized through the same round trip:
    converting only the outer tuple would make any nested tuple inside a key
    mismatch forever after one write/read cycle.
    """
    return json.loads(json.dumps(list(key), cls=NumpyJSONEncoder))


def plan_fingerprint(plan) -> str:
    """A machine-independent digest of the plan's cell structure.

    Digests every cell's normalized key plus the :func:`fingerprint_token`
    of each keyword argument, under the current :data:`FINGERPRINT_VERSION`
    scheme.  Two plans fingerprint identically exactly when they describe the
    same cells — regardless of which machine (or policy-cache directory)
    builds them.
    """
    cell_descriptions = [
        [
            normalize_cell_key(cell.key),
            sorted((name, fingerprint_token(value)) for name, value in cell.kwargs.items()),
        ]
        for cell in plan.cells
    ]
    payload = json.dumps(
        [FINGERPRINT_VERSION, plan.experiment_id, cell_descriptions], sort_keys=True
    )
    return hashlib.sha1(payload.encode("utf8")).hexdigest()


def count_completed_cells(path) -> int:
    """One-shot progress probe: completed-cell records currently in ``path``.

    Counts newline-terminated ``"kind": "cell"`` lines without validating
    them against a plan.  A missing file counts as zero; an unparsable line
    (the partial trailing write of a mid-kill) ends the count, matching
    :meth:`CampaignJournal.load`.  For repeated polling of a *growing*
    journal use :class:`JournalProgress`, which reads only the new bytes.
    """
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return 0
    count = 0
    for line in raw.split(b"\n")[:-1]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            break
        if isinstance(record, dict) and record.get("kind") == "cell":
            count += 1
    return count


class JournalProgress:
    """Incremental cell-count prober for a live (growing) journal file.

    The orchestrator polls every shard journal at sub-second frequency for
    hours; re-reading whole files would make each poll O(file size).  This
    prober remembers the byte offset of the last newline-terminated record it
    has counted and parses only the bytes appended since — O(new bytes) per
    :meth:`poll`.  A file that shrinks (a retry's resume truncates the
    partial tail, or a fresh attempt rewrites the journal) resets the scan;
    an unterminated trailing line is left for the next poll, so a record is
    never counted from a half-written line.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._offset = 0
        self._count = 0
        #: Cumulative bytes this prober has read off disk, across every
        #: :meth:`poll`.  Regression tests assert it stays O(new bytes) —
        #: file size plus rescans — never O(polls × file size).
        self.bytes_read = 0

    def poll(self) -> int:
        """The number of completed-cell records in the journal right now."""
        try:
            size = self.path.stat().st_size
        except OSError:
            self._offset = 0
            self._count = 0
            return 0
        if size < self._offset:
            # Truncated or rewritten since the last poll: rescan from the top.
            self._offset = 0
            self._count = 0
        if size == self._offset:
            return self._count
        with self.path.open("rb") as handle:
            handle.seek(self._offset)
            chunk = handle.read()
        self.bytes_read += len(chunk)
        terminated = chunk.rfind(b"\n")
        if terminated == -1:
            return self._count
        for line in chunk[:terminated].split(b"\n"):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("kind") == "cell":
                self._count += 1
        self._offset += terminated + 1
        return self._count


class CampaignJournal:
    """Append-only JSONL record of one plan's completed cell outputs.

    ``shard=(k, n)`` marks a shard journal: the header records the shard
    coordinates and :meth:`load` refuses a journal whose shard coordinates
    differ from the reader's, so a whole-plan resume can never silently
    consume a partial shard file (or vice versa).
    """

    def __init__(
        self,
        path,
        plan,
        shard: Optional[Tuple[int, int]] = None,
        *,
        fingerprint: Optional[str] = None,
        keys: Optional[list] = None,
    ) -> None:
        self.path = Path(path)
        self.experiment_id = plan.experiment_id
        self.cell_count = plan.cell_count
        # ``fingerprint``/``keys`` let callers that open many journals of the
        # same plan (a merge over N shards) digest the plan once, not N times.
        self.fingerprint = fingerprint if fingerprint is not None else plan_fingerprint(plan)
        self.shard = (int(shard[0]), int(shard[1])) if shard is not None else None
        self._keys = keys if keys is not None else [
            normalize_cell_key(cell.key) for cell in plan.cells
        ]
        self._handle: Optional[TextIO] = None
        # Byte length of the valid prefix found by load(); start() truncates a
        # resumed journal to this point so new records never concatenate onto
        # a partial trailing write from the interrupted run.
        self._valid_bytes = 0
        self._loaded: Optional[Dict[int, object]] = None
        #: Why an *existing* journal file was rejected by :meth:`load`
        #: (``None`` when the file is missing or was accepted).  Callers use
        #: this to distinguish "nothing to resume" from "journal invalidated".
        self.invalid_reason: Optional[str] = None

    # ------------------------------------------------------------------ reading
    def _header_reason(self, record) -> Optional[str]:
        """Why ``record`` is not an acceptable header for this plan, or None."""
        if not isinstance(record, dict) or record.get("kind") != "header":
            return "first line is not a journal header"
        version = record.get("fingerprint_version")
        if version != FINGERPRINT_VERSION:
            written = "an unversioned (version-1) fingerprint" if version is None else (
                f"fingerprint version {version}"
            )
            return (
                f"journal was written with {written}, but this build uses version "
                f"{FINGERPRINT_VERSION}; version-1 fingerprints embedded machine-local "
                "cache paths, so the journal must be recomputed"
            )
        if record.get("fingerprint") != self.fingerprint:
            return (
                "plan fingerprint mismatch (the journal was written for a different "
                "experiment, scale, seed or grid)"
            )
        recorded_shard = record.get("shard")
        expected_shard = list(self.shard) if self.shard is not None else None
        if recorded_shard != expected_shard:
            def _describe(shard):
                return f"shard {shard[0]}/{shard[1]}" if shard else "the whole plan"

            return (
                f"journal covers {_describe(recorded_shard)} but the reader expects "
                f"{_describe(expected_shard)}"
            )
        return None

    def load(self) -> Dict[int, object]:
        """Completed cell outputs recorded for *this* plan, keyed by cell index.

        Returns an empty dict when the journal is missing or invalid; an
        invalid (but present) journal additionally sets
        :attr:`invalid_reason` and logs a warning naming the file and the
        reason, so resumes never silently recompute a journal they merely
        failed to recognize.  A corrupt or truncated trailing line — the
        signature of a kill during a write — is discarded; everything before
        it is kept.

        The parse is cached: a journal object is single-use per campaign run,
        so callers (CLI progress reporting, then the runner) share one scan.
        """
        if self._loaded is not None:
            return self._loaded
        self._loaded = {}
        self._valid_bytes = 0
        self.invalid_reason = None
        if not self.path.exists():
            return self._loaded
        completed: Dict[int, object] = {}
        valid_bytes = 0
        raw = self.path.read_bytes()
        # Only newline-terminated lines count: dropping the final split
        # element discards either the empty string after the last newline or
        # an unterminated partial write, which must not be trusted even when
        # its prefix happens to parse.
        lines = raw.split(b"\n")[:-1]
        for line_number, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if line_number == 0:
                    self._reject("unreadable journal header")
                    return self._loaded
                # Only a trailing partial write is tolerable; stop here.
                break
            if line_number == 0:
                reason = self._header_reason(record)
                if reason is not None:
                    self._reject(reason)
                    return self._loaded
                valid_bytes += len(line) + 1
                continue
            if not isinstance(record, dict) or record.get("kind") != "cell":
                break
            index = record.get("index")
            if (
                not isinstance(index, int)
                or not 0 <= index < self.cell_count
                or record.get("key") != self._keys[index]
                or "output" not in record
            ):
                break
            completed[index] = record["output"]
            valid_bytes += len(line) + 1
        if not lines:
            self._reject("journal file is empty (no header)")
            return self._loaded
        self._loaded = completed
        self._valid_bytes = valid_bytes
        return completed

    def _reject(self, reason: str) -> None:
        """Record (and report) why an existing journal file was not usable."""
        self.invalid_reason = reason
        logger.warning(
            "ignoring journal %s: %s; its cells will be recomputed", self.path, reason
        )

    # ------------------------------------------------------------------ writing
    def start(self, completed: Dict[int, object]) -> None:
        """Open the journal for appending.

        With ``completed`` entries (a resumed run) the existing file is first
        truncated to the valid prefix :meth:`load` found — cutting off any
        partial trailing write from the interrupted run — and then extended;
        otherwise it is rewritten with a fresh header.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if completed:
            if self._loaded is None:
                self.load()  # establish the valid-prefix length to keep
            if self._valid_bytes > 0:
                with self.path.open("rb+") as handle:
                    handle.truncate(self._valid_bytes)
            self._handle = self.path.open("a", encoding="utf8")
        else:
            self._handle = self.path.open("w", encoding="utf8")
            header = {
                "kind": "header",
                "experiment_id": self.experiment_id,
                "cell_count": self.cell_count,
                "fingerprint": self.fingerprint,
                "fingerprint_version": FINGERPRINT_VERSION,
            }
            if self.shard is not None:
                header["shard"] = list(self.shard)
            self._append(header)

    def record(self, index: int, output: object) -> object:
        """Journal one completed cell and return the JSON-decoded output.

        The decoded form is what merge steps must consume so that resumed and
        uninterrupted runs accumulate from identical values.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open; call start() first")
        encoded = json.dumps(
            {"kind": "cell", "index": index, "key": self._keys[index], "output": output},
            cls=NumpyJSONEncoder,
        )
        self._append_line(encoded)
        return json.loads(encoded)["output"]

    def close(self) -> None:
        """Close the journal file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _append(self, record: dict) -> None:
        self._append_line(json.dumps(record, cls=NumpyJSONEncoder))

    def _append_line(self, line: str) -> None:
        self._handle.write(line + "\n")
        # Survive a kill -9 mid-campaign: every completed cell reaches disk
        # before the next one is merged.
        self._handle.flush()
        os.fsync(self._handle.fileno())
