"""Streaming result persistence for campaign runs.

A :class:`CampaignJournal` is a per-artifact JSONL file that records every
completed cell output as soon as it is available.  A killed campaign can then
be restarted with ``repro-campaign <id> --resume``: already-journaled cells
are skipped and the merged payload is byte-identical to an uninterrupted run.

File format — one JSON object per line:

* a header line ``{"kind": "header", "experiment_id": ..., "cell_count": ...,
  "fingerprint": ...}`` identifying the exact plan the journal belongs to;
* cell lines ``{"kind": "cell", "index": ..., "key": [...], "output": ...}``
  in completion (not plan) order.

The fingerprint digests every cell's key and keyword arguments, so a journal
written for a different scale, seed or grid silently invalidates instead of
poisoning a resumed run.  Each line is flushed and fsynced when written;
loading tolerates a truncated or corrupt trailing line (the signature of a
mid-write kill) by discarding it.

Byte-identity across interruption is guaranteed by construction: outputs are
merged from their JSON-decoded form whether they were just computed or read
back from the journal, and JSON round trips floats exactly.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, TextIO

from repro.utils.serialization import NumpyJSONEncoder


def plan_fingerprint(plan) -> str:
    """A digest of the plan's cell structure (keys and keyword arguments).

    Values without a native JSON form (scales, policy refs) are digested via
    ``repr``, which is deterministic for the dataclasses used in cell kwargs.
    """
    cell_descriptions = [
        [list(cell.key), sorted((name, repr(value)) for name, value in cell.kwargs.items())]
        for cell in plan.cells
    ]
    payload = json.dumps([plan.experiment_id, cell_descriptions], sort_keys=True)
    return hashlib.sha1(payload.encode("utf8")).hexdigest()


class CampaignJournal:
    """Append-only JSONL record of one plan's completed cell outputs."""

    def __init__(self, path, plan) -> None:
        self.path = Path(path)
        self.experiment_id = plan.experiment_id
        self.cell_count = plan.cell_count
        self.fingerprint = plan_fingerprint(plan)
        self._keys = [list(cell.key) for cell in plan.cells]
        self._handle: Optional[TextIO] = None
        # Byte length of the valid prefix found by load(); start() truncates a
        # resumed journal to this point so new records never concatenate onto
        # a partial trailing write from the interrupted run.
        self._valid_bytes = 0
        self._loaded: Optional[Dict[int, object]] = None

    # ------------------------------------------------------------------ reading
    def load(self) -> Dict[int, object]:
        """Completed cell outputs recorded for *this* plan, keyed by cell index.

        Returns an empty dict when the journal is missing, belongs to a
        different plan (fingerprint mismatch), or has an unreadable header.
        A corrupt or truncated trailing line — the signature of a kill during
        a write — is discarded; everything before it is kept.

        The parse is cached: a journal object is single-use per campaign run,
        so callers (CLI progress reporting, then the runner) share one scan.
        """
        if self._loaded is not None:
            return self._loaded
        self._loaded = {}
        self._valid_bytes = 0
        if not self.path.exists():
            return self._loaded
        completed: Dict[int, object] = {}
        valid_bytes = 0
        raw = self.path.read_bytes()
        # Only newline-terminated lines count: dropping the final split
        # element discards either the empty string after the last newline or
        # an unterminated partial write, which must not be trusted even when
        # its prefix happens to parse.
        lines = raw.split(b"\n")[:-1]
        for line_number, line in enumerate(lines):
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # Only a trailing partial write is tolerable; stop here.
                break
            if line_number == 0:
                if (
                    not isinstance(record, dict)
                    or record.get("kind") != "header"
                    or record.get("fingerprint") != self.fingerprint
                ):
                    return self._loaded
                valid_bytes += len(line) + 1
                continue
            if not isinstance(record, dict) or record.get("kind") != "cell":
                break
            index = record.get("index")
            if (
                not isinstance(index, int)
                or not 0 <= index < self.cell_count
                or record.get("key") != self._keys[index]
                or "output" not in record
            ):
                break
            completed[index] = record["output"]
            valid_bytes += len(line) + 1
        self._loaded = completed
        self._valid_bytes = valid_bytes
        return completed

    # ------------------------------------------------------------------ writing
    def start(self, completed: Dict[int, object]) -> None:
        """Open the journal for appending.

        With ``completed`` entries (a resumed run) the existing file is first
        truncated to the valid prefix :meth:`load` found — cutting off any
        partial trailing write from the interrupted run — and then extended;
        otherwise it is rewritten with a fresh header.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if completed:
            if self._loaded is None:
                self.load()  # establish the valid-prefix length to keep
            if self._valid_bytes > 0:
                with self.path.open("rb+") as handle:
                    handle.truncate(self._valid_bytes)
            self._handle = self.path.open("a", encoding="utf8")
        else:
            self._handle = self.path.open("w", encoding="utf8")
            self._append(
                {
                    "kind": "header",
                    "experiment_id": self.experiment_id,
                    "cell_count": self.cell_count,
                    "fingerprint": self.fingerprint,
                }
            )

    def record(self, index: int, output: object) -> object:
        """Journal one completed cell and return the JSON-decoded output.

        The decoded form is what merge steps must consume so that resumed and
        uninterrupted runs accumulate from identical values.
        """
        if self._handle is None:
            raise RuntimeError("journal is not open; call start() first")
        encoded = json.dumps(
            {"kind": "cell", "index": index, "key": self._keys[index], "output": output},
            cls=NumpyJSONEncoder,
        )
        self._append_line(encoded)
        return json.loads(encoded)["output"]

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def _append(self, record: dict) -> None:
        self._append_line(json.dumps(record, cls=NumpyJSONEncoder))

    def _append_line(self, line: str) -> None:
        self._handle.write(line + "\n")
        # Survive a kill -9 mid-campaign: every completed cell reaches disk
        # before the next one is merged.
        self._handle.flush()
        os.fsync(self._handle.fileno())
