"""``repro-campaign`` — run paper artifacts from the command line.

Examples::

    repro-campaign --list
    repro-campaign fig3a fig4 --scale tiny --workers 4 --output results/
    repro-campaign fig3a --replicates 3 --seed 7   # 3 independent seeds
    repro-campaign fig5a --workers 4 --batch-cells 4 --output results/
    repro-campaign fig5a --workers 4 --output results/ --resume  # after a kill

    # Multi-machine: each machine runs a disjoint shard into a shared store,
    # then any machine merges — byte-identical to a single-machine run.
    repro-campaign fig6a --shard 1/2 --journal-dir /shared/journals   # machine A
    repro-campaign fig6a --shard 2/2 --journal-dir /shared/journals   # machine B
    repro-campaign fig6a --merge-only --journal-dir /shared/journals --output results/

Replicate seeds are derived with ``numpy.random.SeedSequence.spawn`` (see
:func:`repro.runtime.cells.derive_cell_seeds`), so adding replicates never
perturbs existing ones.

With ``--output`` (or an explicit ``--journal-dir``), completed cell outputs
stream to a per-artifact JSONL journal as the campaign runs; ``--resume``
skips already-journaled cells after an interruption and produces a payload
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache
from repro.runtime.cells import derive_cell_seeds
from repro.runtime.plans import decomposed_experiment_ids, plannable_experiment_ids
from repro.runtime.runner import CampaignRunner, default_worker_count
from repro.runtime.sharding import ShardRunReport, ShardSpec
from repro.utils.serialization import save_json

_SCALE_PRESETS = {
    "tiny": (GridWorldScale.tiny, DroneScale.tiny),
    "fast": (GridWorldScale.fast, DroneScale.fast),
    "paper": (GridWorldScale.paper, DroneScale.paper),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run FRL-FI fault-injection campaigns, optionally on a process pool.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="artifact identifiers (fig3a ... fig9, table1) or 'all'",
    )
    parser.add_argument("--list", action="store_true", help="list runnable artifacts and exit")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size; 0 picks a machine-sized default "
        f"(currently {default_worker_count()} here); 1 runs serially",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALE_PRESETS),
        default="fast",
        help="workload scale preset (default: fast)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the scales' root seed")
    parser.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="run each artifact N times under independently derived seeds",
    )
    parser.add_argument(
        "--batch-cells",
        type=int,
        default=1,
        metavar="N",
        help="group up to N cells into one pool submission to amortize "
        "process round-trips (default: 1)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for per-artifact .json/.txt result files",
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        help="directory for streaming per-artifact JSONL cell journals "
        "(default: <output>/journals when --output is given)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in the journal of a previous "
        "(interrupted) run of the same campaign",
    )
    parser.add_argument(
        "--shard",
        metavar="K/N",
        default=None,
        help="run only shard K of an N-way strided partition of each "
        "artifact's cells, journaling to <label>.shard-K-of-N.jsonl; shard "
        "runs never merge (use --merge-only once every shard has run)",
    )
    parser.add_argument(
        "--merge-only",
        action="store_true",
        help="merge previously journaled shard runs into the final payload "
        "without executing any cell; fails loudly if any shard or cell is "
        "missing or any journal does not match the plan",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="policy cache directory shared by all workers "
        "(default: $FRLFI_CACHE_DIR or ./.frlfi_cache)",
    )
    return parser


def _save(output_dir: Path, name: str, result) -> None:
    output_dir.mkdir(parents=True, exist_ok=True)
    text = result.render() if hasattr(result, "render") else str(result)
    (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf8")
    if hasattr(result, "as_dict"):
        save_json(output_dir / f"{name}.json", result.as_dict())


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    # Journal-invalidation warnings (stale fingerprints, shard mismatches)
    # come through the logging module; make them visible on stderr.
    logging.basicConfig(
        level=logging.WARNING, format="[repro-campaign] %(levelname)s: %(message)s"
    )

    if args.list:
        decomposed = set(decomposed_experiment_ids())
        for experiment_id in plannable_experiment_ids():
            kind = "parallel" if experiment_id in decomposed else "single-cell"
            print(f"{experiment_id:12s} {kind}")
        return 0

    if not args.experiments:
        parser.error("no experiments given (or use --list)")
    if args.workers < 0:
        parser.error("--workers must be >= 0 (0 picks a machine-sized default)")
    if args.replicates < 1:
        parser.error("--replicates must be >= 1")
    if args.batch_cells < 1:
        parser.error("--batch-cells must be >= 1")
    shard = None
    if args.shard is not None:
        if args.merge_only:
            parser.error(
                "--shard and --merge-only are mutually exclusive: shards run cells, "
                "merge-only folds finished shard journals together"
            )
        try:
            shard = ShardSpec.parse(args.shard)
        except ValueError as error:
            parser.error(f"invalid --shard: {error}")
    journal_dir = args.journal_dir
    if journal_dir is None and args.output is not None:
        journal_dir = args.output / "journals"
    if args.resume and journal_dir is None:
        parser.error("--resume needs a journal (give --journal-dir or --output)")
    if (shard is not None or args.merge_only) and journal_dir is None:
        parser.error(
            "--shard/--merge-only need the shared journal store "
            "(give --journal-dir or --output)"
        )
    if (shard is not None or args.merge_only) and args.replicates > 1 and args.seed is None:
        # Replicate seeds derive from OS entropy when no root seed is given,
        # so every machine (and the merging run) would build a different plan
        # and the shard journals could never fingerprint-match.
        parser.error(
            "--shard/--merge-only with --replicates > 1 needs an explicit --seed "
            "so every machine derives the same replicate plans"
        )

    gridworld_factory, drone_factory = _SCALE_PRESETS[args.scale]
    workers = args.workers if args.workers != 0 else default_worker_count()
    cache = PolicyCache(args.cache_dir) if args.cache_dir is not None else None

    known = plannable_experiment_ids()
    if args.experiments == ["all"]:
        experiment_ids = known
    else:
        experiment_ids = args.experiments
        unknown = sorted(set(experiment_ids) - set(known))
        if unknown:
            parser.error(f"unknown experiments {unknown}; available: {known}")

    base_seed = args.seed
    replicate_seeds = (
        derive_cell_seeds(base_seed, args.replicates) if args.replicates > 1 else [base_seed]
    )

    exit_code = 0
    for replicate, seed in enumerate(replicate_seeds):
        gridworld_scale = gridworld_factory()
        drone_scale = drone_factory()
        if seed is not None:
            gridworld_scale = gridworld_scale.with_seed(seed)
            drone_scale = drone_scale.with_seed(seed)
        runner = CampaignRunner(
            gridworld_scale=gridworld_scale,
            drone_scale=drone_scale,
            cache=cache,
            workers=workers,
            batch_size=args.batch_cells,
            journal_dir=journal_dir,
            resume=args.resume,
            shard=shard,
        )
        suffix = f"@r{replicate}" if args.replicates > 1 else ""
        if args.replicates > 1:
            # Record the derived seed so any single replicate can be rerun
            # exactly with --replicates 1 --seed <seed>.
            print(f"[repro-campaign] replicate {replicate}: seed={seed}", flush=True)
        for experiment_id in experiment_ids:
            label = f"{experiment_id}{suffix}"
            start = time.perf_counter()
            try:
                # Plan building can fail too (corrupt cache entries, baseline
                # training errors), so it sits inside the per-artifact guard.
                plan = runner.plan(experiment_id)
                if (shard is not None or args.merge_only) and plan.cell_count <= 1:
                    # Single-cell plans (fig3e, fig9) have no journal and
                    # nothing to partition; skip them so `all --shard k/n`
                    # stays usable, instead of failing every machine.
                    print(
                        f"[repro-campaign] {label}: SKIPPED — single-cell plans "
                        "cannot be sharded or shard-merged; run this artifact "
                        "without --shard/--merge-only",
                        flush=True,
                    )
                    continue
                if args.merge_only:
                    print(
                        f"[repro-campaign] {label}: merging shard journals "
                        f"({plan.cell_count} cells, no execution)...",
                        flush=True,
                    )
                    result = runner.merge_shards(plan, name=label)
                else:
                    # Journals are per label, so each replicate resumes its own.
                    journal = runner.journal_for(plan, name=label)
                    journaled = len(journal.load()) if journal is not None and args.resume else 0
                    if shard is not None:
                        assigned = len(shard.cell_indices(plan.cell_count))
                        progress = (
                            f"shard {shard.describe()}: {assigned}/{plan.cell_count} "
                            f"cells on {workers} worker(s)"
                        )
                    else:
                        progress = f"{plan.cell_count} cells on {workers} worker(s)"
                    if args.batch_cells > 1:
                        progress += f", batches of {args.batch_cells}"
                    if journaled:
                        progress += f", {journaled} already journaled"
                    print(f"[repro-campaign] {label}: {progress}...", flush=True)
                    result = runner.run_plan(plan, journal=journal)
            except KeyboardInterrupt:
                raise
            except Exception as error:
                # Keep going so a multi-artifact run reports every failure.
                print(f"[repro-campaign] {label}: FAILED — {error}", file=sys.stderr, flush=True)
                exit_code = 1
                continue
            elapsed = time.perf_counter() - start
            if isinstance(result, ShardRunReport):
                # A shard run has no merged payload to store or save — its
                # deliverable is the shard journal.
                print(f"[repro-campaign] {label}: {result.render()}", flush=True)
                print(f"[repro-campaign] {label}: done in {elapsed:.1f}s", flush=True)
                continue
            runner.results[experiment_id] = result
            print(f"[repro-campaign] {label}: done in {elapsed:.1f}s", flush=True)
            if args.output is not None:
                _save(args.output, label, result)
        print(runner.report())
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
