"""``repro-campaign`` — run paper artifacts from the command line.

Examples::

    repro-campaign --list
    repro-campaign fig3a fig4 --scale tiny --workers 4 --output results/
    repro-campaign fig3a --replicates 3 --seed 7   # 3 independent seeds
    repro-campaign fig5a --workers 4 --batch-cells 4 --output results/
    repro-campaign fig5a --workers 4 --output results/ --resume  # after a kill

    # Sharded multi-machine campaign, driven end to end (launch, watch,
    # retry failed shards with --resume, merge) by the orchestrator:
    repro-campaign orchestrate fig6a --shards 4 --workers-per-shard 2 --output results/

    # Under the hood (or by a real scheduler): each machine runs a disjoint
    # shard into a shared store, then any machine merges — byte-identical to
    # a single-machine run.
    repro-campaign fig6a --shard 1/2 --journal-dir /shared/journals   # machine A
    repro-campaign fig6a --shard 2/2 --journal-dir /shared/journals   # machine B
    repro-campaign fig6a --merge-only --journal-dir /shared/journals --output results/

    # Compact every journal + orchestrator report into a queryable sqlite
    # store, then slice it (schemas documented in docs/RESULTS.md):
    repro-campaign ingest /shared/journals
    repro-campaign query slice fig6a --by ber --journal-dir /shared/journals

    # Resident campaign service: one daemon multiplexes many concurrent
    # campaigns (priorities, per-tenant quotas) over one backend roster:
    repro-campaign serve --journal-dir /shared/journals --backend local:4
    repro-campaign submit fig6a --journal-dir /shared/journals --label nightly
    repro-campaign tail nightly --journal-dir /shared/journals
    repro-campaign cancel nightly --journal-dir /shared/journals

Replicate seeds are derived with ``numpy.random.SeedSequence.spawn`` (see
:func:`repro.runtime.cells.derive_cell_seeds`), so adding replicates never
perturbs existing ones.

With ``--output`` (or an explicit ``--journal-dir``), completed cell outputs
stream to a per-artifact JSONL journal as the campaign runs; ``--resume``
skips already-journaled cells after an interruption and produces a payload
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import logging
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache
from repro.runtime.cells import derive_cell_seeds
from repro.runtime.plans import decomposed_experiment_ids, plannable_experiment_ids
from repro.runtime.runner import CampaignRunner, default_worker_count
from repro.runtime.sharding import ShardRunReport, ShardSpec
from repro.utils.serialization import save_json

_SCALE_PRESETS = {
    "tiny": (GridWorldScale.tiny, DroneScale.tiny),
    "fast": (GridWorldScale.fast, DroneScale.fast),
    "paper": (GridWorldScale.paper, DroneScale.paper),
}


_EPILOG = """\
examples:
  repro-campaign --list
  repro-campaign fig3a fig4 --scale tiny --workers 4 --output results/
  repro-campaign fig5a --workers 4 --output results/                # ... killed partway
  repro-campaign fig5a --workers 4 --output results/ --resume       # finish the rest

  # sharded multi-machine campaign, driven end to end (launch, watch, retry
  # failed shards with --resume, merge) by the orchestrator:
  repro-campaign orchestrate fig6a --shards 4 --workers-per-shard 2 --output results/
  repro-campaign orchestrate fig6a --shards 16 --emit-slurm fig6a.sbatch \\
      --journal-dir /shared/journals                                # render, don't run

  # under the hood (or from a real scheduler): one --shard run per machine
  # into a shared journal store, then any machine merges
  repro-campaign fig6a --shard 1/2 --journal-dir /shared/journals   # machine A
  repro-campaign fig6a --shard 2/2 --journal-dir /shared/journals   # machine B
  repro-campaign fig6a --merge-only --journal-dir /shared/journals --output results/

  # compact the journals + orchestrator reports into a queryable sqlite store
  repro-campaign ingest /shared/journals
  repro-campaign query cells fig6a --store /shared/journals/store.sqlite
  repro-campaign query slice fig6a --by ber --format json --store /shared/journals/store.sqlite

  # resident campaign service (daemon + thin clients over a unix socket)
  repro-campaign serve --journal-dir /shared/journals --backend local:4 \\
      --quota alice=2 --resume
  repro-campaign submit fig6a --journal-dir /shared/journals \\
      --label nightly --tenant alice --priority 5 --shards 2
  repro-campaign status --journal-dir /shared/journals
  repro-campaign tail nightly --journal-dir /shared/journals
  repro-campaign cancel nightly --journal-dir /shared/journals

`repro-campaign orchestrate --help` documents the orchestrator's own options;
`repro-campaign ingest --help` and `repro-campaign query --help` document the
result store (schemas in docs/RESULTS.md); `repro-campaign serve --help`
documents the resident campaign service.
"""


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for the main (run/shard/merge) command."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Run FRL-FI fault-injection campaigns, optionally on a process "
        "pool; the 'orchestrate' subcommand drives a whole sharded campaign "
        "(launch, watch, retry, merge) from one terminal.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="artifact identifiers (fig3a ... fig9, table1), 'all', or a "
        "subcommand: orchestrate, ingest, query, serve, submit, status, "
        "tail, cancel",
    )
    parser.add_argument("--list", action="store_true", help="list runnable artifacts and exit")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool size; 0 picks a machine-sized default "
        f"(currently {default_worker_count()} here); 1 runs serially",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALE_PRESETS),
        default="fast",
        help="workload scale preset (default: fast)",
    )
    parser.add_argument("--seed", type=int, default=None, help="override the scales' root seed")
    parser.add_argument(
        "--replicates",
        type=int,
        default=1,
        help="run each artifact N times under independently derived seeds",
    )
    parser.add_argument(
        "--batch-cells",
        type=int,
        default=1,
        metavar="N",
        help="group up to N cells into one pool submission to amortize "
        "process round-trips (default: 1)",
    )
    parser.add_argument(
        "--vectorize",
        choices=("auto", "on", "off"),
        default="auto",
        help="lockstep (vectorized) evaluation of cell groups: 'auto' uses it "
        "where a vectorized runner exists, 'on' fails if one is missing, "
        "'off' forces the serial per-cell path; payloads are byte-identical "
        "either way (default: auto)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for per-artifact .json/.txt result files",
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        help="directory for streaming per-artifact JSONL cell journals "
        "(default: <output>/journals when --output is given)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already recorded in the journal of a previous "
        "(interrupted) run of the same campaign, e.g.: repro-campaign fig5a "
        "--output results/ --resume",
    )
    parser.add_argument(
        "--shard",
        metavar="K/N",
        default=None,
        help="run only shard K of an N-way strided partition of each "
        "artifact's cells, journaling to <label>.shard-K-of-N.jsonl; shard "
        "runs never merge (use --merge-only once every shard has run), "
        "e.g.: repro-campaign fig6a --shard 1/2 --journal-dir /shared/journals",
    )
    parser.add_argument(
        "--merge-only",
        action="store_true",
        help="merge previously journaled shard runs into the final payload "
        "without executing any cell; fails loudly if any shard or cell is "
        "missing or any journal does not match the plan, e.g.: repro-campaign "
        "fig6a --merge-only --journal-dir /shared/journals --output results/",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="policy cache directory shared by all workers "
        "(default: $FRLFI_CACHE_DIR or ./.frlfi_cache)",
    )
    return parser


_ORCHESTRATE_EPILOG = """\
examples:
  # 4 concurrent shard subprocesses, 2 pool workers each, retry a failed or
  # stalled shard (resuming from its journal) up to 2 times, then merge:
  repro-campaign orchestrate fig6a --shards 4 --workers-per-shard 2 --output results/

  # mixed execution backends with capacity-aware scheduling: 2 shard slots on
  # this machine, 4 over ssh, 16 as Slurm jobs; a failed shard retries on a
  # *different* backend (--resume keeps its journaled cells either way):
  repro-campaign orchestrate fig6a --shards 22 --journal-dir /shared/journals \\
      --backend local:2 --backend ssh:4,host=node7 --backend slurm:16

  # print the shard->backend assignment and exact commands, launch nothing:
  repro-campaign orchestrate fig6a --shards 4 --journal-dir /shared/journals \\
      --backend local:1 --backend slurm:3 --dry-run

  # don't run locally — render ready-to-submit cluster templates instead:
  repro-campaign orchestrate fig6a --shards 16 --journal-dir /shared/journals \\
      --emit-slurm fig6a.sbatch --emit-k8s fig6a.yaml

The merged payload is byte-identical to an unsharded single-machine run; the
per-shard attempt log (including which backend ran each attempt) lands in
<journal-dir>/<label>.orchestrator.json.
"""


def build_orchestrate_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``orchestrate`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign orchestrate",
        description="Drive a whole sharded campaign from one terminal: launch "
        "each --shard k/n run as a subprocess, tail the shard journals for "
        "live progress, retry failed or stalled shards with --resume, and "
        "merge the shard journals into the final payload.",
        epilog=_ORCHESTRATE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "experiment",
        help="artifact identifier to orchestrate (must decompose into >1 cell, "
        "e.g. fig6a)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        required=True,
        metavar="N",
        help="number of --shard k/N subprocesses to run (all concurrently)",
    )
    parser.add_argument(
        "--workers-per-shard",
        type=int,
        default=1,
        metavar="M",
        help="process-pool size inside each shard subprocess (default: 1)",
    )
    parser.add_argument(
        "--batch-cells",
        type=int,
        default=1,
        metavar="B",
        help="forwarded to each shard: group up to B cells per pool submission",
    )
    parser.add_argument(
        "--vectorize",
        choices=("auto", "on", "off"),
        default="auto",
        help="forwarded to each shard: lockstep (vectorized) evaluation of "
        "cell groups (default: auto)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="R",
        help="retry a failed or stalled shard up to R times, resuming from its "
        "journal with --resume (default: 2)",
    )
    parser.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a shard whose journal shows no new cell for this "
        "many seconds (default: disabled)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="how often shard journals are polled for progress (default: 0.5)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALE_PRESETS),
        default="fast",
        help="workload scale preset, forwarded to every shard (default: fast)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="root seed, forwarded to every shard"
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="policy cache directory shared by the orchestrator and all shards "
        "(default: $FRLFI_CACHE_DIR or ./.frlfi_cache)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="directory for the merged .json/.txt result files",
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        help="shared journal store for the shard journals and the orchestrator "
        "report (default: <output>/journals when --output is given)",
    )
    parser.add_argument(
        "--emit-slurm",
        type=Path,
        default=None,
        metavar="FILE",
        help="instead of running locally, write a ready-to-submit Slurm "
        "array-job script for the sharded campaign to FILE and exit",
    )
    parser.add_argument(
        "--emit-k8s",
        type=Path,
        default=None,
        metavar="FILE",
        help="instead of running locally, write a ready-to-submit Kubernetes "
        "indexed-Job manifest for the sharded campaign to FILE and exit",
    )
    parser.add_argument(
        "--inject-kill-shard",
        type=int,
        default=None,
        metavar="K",
        help="chaos-testing hook: SIGKILL shard K's first attempt once it has "
        "journaled a cell, forcing the retry+--resume path (CI uses this to "
        "prove the merged payload survives a mid-run kill)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        dest="backends",
        default=None,
        metavar="NAME[:SLOTS][,KEY=VALUE...]",
        help="execution backend for shard attempts, repeatable: local[:slots], "
        "ssh[:slots],host=NODE, or slurm[:slots][,bin_dir=DIR][,poll=SECONDS]; "
        "add workers=M to override --workers-per-shard for that backend's "
        "attempts; the scheduler assigns shards by free slots and a retry "
        "prefers a different backend than the one that just failed "
        "(default: one unbounded local backend)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved shard->backend assignment and the exact "
        "per-shard commands, then exit without launching anything",
    )
    return parser


_QUERY_EPILOG = """\
canned queries:
  campaigns             every ingested campaign with its cell coverage
  cells LABEL           per-cell outcomes of one campaign, in plan order
  slice LABEL [--by C]  outcome statistics grouped by one key coordinate
                        (default: ber — the failure-rate-vs-BER slices)
  attempts [LABEL]      every orchestrator shard attempt, in order
  timings [LABEL]       per-backend attempt counts, success rates and durations

examples:
  repro-campaign ingest /shared/journals
  repro-campaign query campaigns --store /shared/journals/store.sqlite
  repro-campaign query cells fig6a --journal-dir /shared/journals --format ndjson
  repro-campaign query slice fig6a --by ber --journal-dir /shared/journals
  repro-campaign query timings --journal-dir /shared/journals
  repro-campaign query --sql "SELECT COUNT(*) FROM cells" --journal-dir /shared/journals

Schemas and more worked examples: docs/RESULTS.md.
"""


def build_ingest_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``ingest`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign ingest",
        description="Compact a journal directory's merged journals, shard "
        "journals and orchestrator reports into a schema-versioned sqlite "
        "store. Incremental and idempotent: unchanged files are skipped, so "
        "re-running over the same directory inserts zero rows.",
        epilog="Schemas: docs/RESULTS.md.",
    )
    parser.add_argument(
        "journal_dirs",
        nargs="+",
        type=Path,
        metavar="JOURNAL_DIR",
        help="journal director(ies) to ingest",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="FILE",
        help="sqlite store file (default: <first JOURNAL_DIR>/store.sqlite)",
    )
    return parser


def build_query_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``query`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign query",
        description="Query an ingested result store: canned queries over "
        "campaigns, cells, slices, attempts and backend timings, or raw SQL "
        "with --sql.",
        epilog=_QUERY_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "what",
        nargs="*",
        metavar="QUERY [LABEL]",
        help="canned query name plus its arguments (see below), or nothing "
        "with --sql",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="FILE",
        help="sqlite store file to query",
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="shorthand for --store DIR/store.sqlite",
    )
    parser.add_argument(
        "--by",
        default="ber",
        metavar="COORD",
        help="cell-key coordinate for 'slice' grouping (default: ber)",
    )
    parser.add_argument(
        "--fingerprint",
        default=None,
        metavar="PREFIX",
        help="pin 'cells'/'slice' to the campaign whose plan fingerprint "
        "starts with PREFIX (default: the newest campaign for the label)",
    )
    parser.add_argument(
        "--sql",
        default=None,
        metavar="SQL",
        help="raw SQL escape hatch, instead of a canned query",
    )
    parser.add_argument(
        "--format",
        choices=("table", "json", "ndjson"),
        default="table",
        help="output format (default: table)",
    )
    return parser


def _ingest_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign ingest ...``."""
    from repro.runtime.store import ResultStore, StoreError

    parser = build_ingest_parser()
    args = parser.parse_args(argv)
    store_path = args.store
    if store_path is None:
        store_path = args.journal_dirs[0] / "store.sqlite"
    try:
        with ResultStore(store_path) as store:
            for journal_dir in args.journal_dirs:
                report = store.ingest(journal_dir)
                print(f"[ingest] {journal_dir}: {report.render()}", flush=True)
    except StoreError as error:
        print(f"[ingest] FAILED — {error}", file=sys.stderr, flush=True)
        return 1
    print(f"[ingest] store: {store_path}", flush=True)
    return 0


def _query_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign query ...``."""
    from repro.runtime.store import ResultStore, StoreError, format_rows

    parser = build_query_parser()
    args = parser.parse_args(argv)
    store_path = args.store
    if store_path is None and args.journal_dir is not None:
        store_path = args.journal_dir / "store.sqlite"
    if store_path is None:
        parser.error("give --store FILE or --journal-dir DIR")
    if not store_path.exists():
        parser.error(f"no store at {store_path} (run 'repro-campaign ingest' first)")
    if args.sql is not None and args.what:
        parser.error("--sql replaces the canned query; give one or the other")
    if args.sql is None and not args.what:
        parser.error(
            "give a canned query (campaigns, cells LABEL, slice LABEL, "
            "attempts [LABEL], timings [LABEL]) or --sql"
        )
    try:
        with ResultStore(store_path) as store:
            if args.sql is not None:
                columns, rows = store.sql(args.sql)
            else:
                columns, rows = _run_canned_query(parser, store, args)
            print(format_rows(columns, rows, args.format), flush=True)
    except StoreError as error:
        print(f"[query] FAILED — {error}", file=sys.stderr, flush=True)
        return 1
    return 0


def _run_canned_query(parser, store, args):
    """Dispatch ``args.what`` to the store's canned query methods."""
    name, rest = args.what[0], args.what[1:]
    if name == "campaigns":
        if rest:
            parser.error("'campaigns' takes no arguments")
        return store.query_campaigns()
    if name in ("cells", "slice"):
        if len(rest) != 1:
            parser.error(f"'{name}' needs exactly one LABEL argument")
        if name == "cells":
            return store.query_cells(rest[0], fingerprint=args.fingerprint)
        return store.query_slice(rest[0], coordinate=args.by, fingerprint=args.fingerprint)
    if name in ("attempts", "timings"):
        if len(rest) > 1:
            parser.error(f"'{name}' takes at most one LABEL argument")
        label = rest[0] if rest else None
        if name == "attempts":
            return store.query_attempts(label)
        return store.query_timings(label)
    parser.error(
        f"unknown query {name!r}; use campaigns, cells LABEL, slice LABEL, "
        "attempts [LABEL], timings [LABEL], or --sql"
    )


_SERVE_EPILOG = """\
examples:
  # daemonize a shared roster: 4 local shard slots + a Slurm partition, with
  # per-tenant concurrency quotas and crash-safe re-adoption of campaigns
  # that were in flight when the previous daemon died:
  repro-campaign serve --journal-dir /shared/journals \\
      --backend local:4 --backend slurm:16 \\
      --quota alice=2 --quota bob=2 --default-quota 4 --resume

  # print the resolved roster and quota table, bind nothing:
  repro-campaign serve --journal-dir /shared/journals --backend local:2 --dry-run

Submissions journal into <journal-dir>/<label>/ and the merged payload lands
there as <artifact>.json/.txt — byte-identical to a one-shot run of the same
artifact.  The daemon's own submission/state journal is
<journal-dir>/service.campaigns.jsonl (records documented in docs/RESULTS.md).
"""


def build_serve_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``serve`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign serve",
        description="Run the resident campaign service: accept campaign "
        "submissions over a Unix socket, multiplex them over one shared "
        "backend roster through a priority queue with per-tenant quotas, "
        "stream live progress, and survive restarts via the journal store.",
        epilog=_SERVE_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        required=True,
        help="shared journal store: per-campaign journals, merged payloads, "
        "and the service's own submission/state journal live here",
    )
    parser.add_argument(
        "--socket",
        type=Path,
        default=None,
        metavar="PATH",
        help="Unix socket to listen on (default: <journal-dir>/service.sock)",
    )
    parser.add_argument(
        "--backend",
        action="append",
        dest="backends",
        default=None,
        metavar="NAME[:SLOTS][,KEY=VALUE...]",
        help="shared execution backend roster, repeatable (same spellings as "
        "orchestrate --backend; default: one unbounded local backend)",
    )
    parser.add_argument(
        "--quota",
        action="append",
        dest="quotas",
        default=None,
        metavar="TENANT=N",
        help="cap TENANT at N concurrently running shard attempts, repeatable",
    )
    parser.add_argument(
        "--default-quota",
        type=int,
        default=None,
        metavar="N",
        help="concurrency cap for tenants without an explicit --quota "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALE_PRESETS),
        default="fast",
        help="default workload scale for submissions that do not name one "
        "(default: fast)",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="policy cache directory shared by planning and all shards",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="R",
        help="per-shard retry budget for every campaign (default: 2)",
    )
    parser.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry a shard whose journal shows no new cell for this "
        "many seconds (default: disabled)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="journal poll / progress stream interval (default: 0.5)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="re-adopt campaigns that were submitted but unfinished when the "
        "previous daemon stopped; their orchestrators resume from the shard "
        "journals, recomputing no completed cell",
    )
    parser.add_argument(
        "--inject-kill-shard",
        type=int,
        default=None,
        metavar="K",
        help="chaos-testing hook forwarded to every campaign: SIGKILL shard "
        "K's first attempt once it has journaled a cell",
    )
    parser.add_argument(
        "--ingest",
        action="store_true",
        help="after each merge, ingest the campaign's journals into "
        "<journal-dir>/store.sqlite (the queryable result store)",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the resolved roster and quota table, then exit without "
        "binding the socket or starting anything",
    )
    return parser


def _add_client_socket_arguments(parser: argparse.ArgumentParser) -> None:
    """The two ways every client command can name the daemon's socket."""
    parser.add_argument(
        "--socket",
        type=Path,
        default=None,
        metavar="PATH",
        help="the daemon's Unix socket",
    )
    parser.add_argument(
        "--journal-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help="shorthand for --socket DIR/service.sock",
    )


def build_submit_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``submit`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign submit",
        description="Submit one campaign to a running campaign service "
        "(see 'repro-campaign serve').  Returns immediately with the "
        "campaign id; follow progress with 'repro-campaign tail LABEL'.",
    )
    parser.add_argument("experiment", help="artifact identifier to run (e.g. fig6a)")
    _add_client_socket_arguments(parser)
    parser.add_argument(
        "--label",
        default=None,
        help="campaign label, also its journal subdirectory name "
        "(default: the artifact id); a label already in flight is refused",
    )
    parser.add_argument("--tenant", default="default", help="tenant the quota applies to")
    parser.add_argument(
        "--priority",
        type=int,
        default=0,
        help="dispatch priority (higher dispatches first; default: 0)",
    )
    parser.add_argument(
        "--shards", type=int, default=2, metavar="N", help="shard count (default: 2)"
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALE_PRESETS),
        default=None,
        help="workload scale (default: the daemon's --scale)",
    )
    parser.add_argument("--seed", type=int, default=None, help="root seed for the campaign")
    parser.add_argument(
        "--workers-per-shard",
        type=int,
        default=1,
        metavar="M",
        help="process-pool size inside each shard (default: 1)",
    )
    parser.add_argument(
        "--batch-cells",
        type=int,
        default=1,
        metavar="B",
        help="forwarded to each shard: group up to B cells per pool submission",
    )
    parser.add_argument(
        "--vectorize",
        choices=("auto", "on", "off"),
        default="auto",
        help="forwarded to each shard (default: auto)",
    )
    return parser


def build_status_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``status`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign status",
        description="Show a running campaign service's campaigns (no "
        "argument), or one campaign's full status (by label or id).",
    )
    parser.add_argument(
        "target", nargs="?", default=None, help="campaign label or id (optional)"
    )
    _add_client_socket_arguments(parser)
    return parser


def build_tail_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``tail`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign tail",
        description="Stream one campaign's live per-shard progress from a "
        "running campaign service as NDJSON, until it reaches a terminal "
        "state.  Exit code 0 iff the campaign merged.",
    )
    parser.add_argument("target", help="campaign label or id")
    _add_client_socket_arguments(parser)
    return parser


def build_cancel_parser() -> argparse.ArgumentParser:
    """The argparse parser for the ``cancel`` subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro-campaign cancel",
        description="Cancel an in-flight campaign: the daemon group-kills "
        "its running shard attempts and journals the cancellation (the shard "
        "journals keep every completed cell for a later resume).",
    )
    parser.add_argument("target", help="campaign label or id")
    _add_client_socket_arguments(parser)
    return parser


def _resolve_client_socket(parser: argparse.ArgumentParser, args) -> Path:
    """The daemon socket a client command should talk to."""
    if args.socket is not None:
        return args.socket
    if args.journal_dir is not None:
        return args.journal_dir / "service.sock"
    parser.error("give --socket PATH or --journal-dir DIR")


def _parse_quotas(parser: argparse.ArgumentParser, texts) -> dict:
    """Parse repeated ``--quota TENANT=N`` options."""
    quotas = {}
    for text in texts or []:
        tenant, separator, value = str(text).partition("=")
        if not separator or not tenant.strip() or not value.strip():
            parser.error(f"--quota must be TENANT=N, got {text!r}")
        try:
            quotas[tenant.strip()] = int(value)
        except ValueError:
            parser.error(f"--quota {text!r}: N must be an integer")
    return quotas


def _serve_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign serve ...``."""
    import asyncio

    from repro.runtime.backends import BackendError, build_backends
    from repro.runtime.service import CampaignService, ServiceError
    from repro.runtime.service_api import ServiceAPI

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.poll_interval <= 0:
        parser.error("--poll-interval must be > 0")
    if args.stall_timeout is not None and args.stall_timeout <= 0:
        parser.error("--stall-timeout must be > 0")
    if args.default_quota is not None and args.default_quota < 1:
        parser.error("--default-quota must be >= 1")
    if args.inject_kill_shard is not None and args.inject_kill_shard < 1:
        parser.error("--inject-kill-shard must be >= 1")
    quotas = _parse_quotas(parser, args.quotas)
    if any(quota < 1 for quota in quotas.values()):
        parser.error("--quota caps must be >= 1")
    try:
        backends = build_backends(args.backends or ["local"])
    except BackendError as error:
        parser.error(f"invalid --backend: {error}")
    socket_path = args.socket if args.socket is not None else args.journal_dir / "service.sock"
    try:
        service = CampaignService(
            args.journal_dir,
            backends=backends,
            quotas=quotas,
            default_quota=args.default_quota,
            scale=args.scale,
            cache_dir=args.cache_dir,
            max_retries=args.max_retries,
            stall_timeout=args.stall_timeout,
            poll_interval=args.poll_interval,
            resume=args.resume,
            inject_kill_shard=args.inject_kill_shard,
            ingest_on_completion=args.ingest,
            on_event=lambda message: print(f"[serve] {message}", flush=True),
        )
    except ServiceError as error:
        parser.error(str(error))
    if args.dry_run:
        print(f"campaign service (dry run)\nsocket: {socket_path}", flush=True)
        print(service.render_dry_run(), flush=True)
        return 0

    async def _serve() -> int:
        await service.start()
        api = ServiceAPI(service, socket_path)
        await api.start()
        print(f"[serve] listening on {socket_path}", flush=True)
        try:
            await api.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await api.close()
            await service.close()
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        print("[serve] stopped", flush=True)
        return 0


def _client_main(argv: Sequence[str], parser_builder, handler) -> int:
    """Shared driver for the thin client commands (connect, call, render)."""
    from repro.runtime.service_api import ServiceClient, ServiceClientError

    parser = parser_builder()
    args = parser.parse_args(argv)
    client = ServiceClient(_resolve_client_socket(parser, args))
    try:
        return handler(client, args)
    except ServiceClientError as error:
        print(f"[{parser.prog.split()[-1]}] FAILED — {error}", file=sys.stderr, flush=True)
        return 1
    except (ConnectionError, OSError, TimeoutError) as error:
        print(f"[{parser.prog.split()[-1]}] FAILED — {error}", file=sys.stderr, flush=True)
        return 1


def _submit_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign submit ...``."""

    def handler(client, args) -> int:
        payload = {
            "experiment_id": args.experiment,
            "label": args.label or args.experiment,
            "tenant": args.tenant,
            "priority": args.priority,
            "shards": args.shards,
            "scale": args.scale,
            "seed": args.seed,
            "workers_per_shard": args.workers_per_shard,
            "batch_cells": args.batch_cells,
            "vectorize": args.vectorize,
        }
        status = client.submit(payload)
        print(
            f"[submit] {status['id']} {status['label']}: {status['state']} "
            f"(tenant {status['tenant']}, priority {status['priority']})",
            flush=True,
        )
        return 0

    return _client_main(argv, build_submit_parser, handler)


def _status_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign status ...``."""
    import json as json_module

    def handler(client, args) -> int:
        if args.target is None:
            campaigns = client.campaigns()
            if not campaigns:
                print("[status] no campaigns", flush=True)
                return 0
            for status in campaigns:
                shards = status.get("shards") or {}
                cells = sum(shards.values())
                print(
                    f"{status['id']}  {status['label']:20s} {status['state']:10s} "
                    f"tenant={status['tenant']} priority={status['priority']} "
                    f"cells={cells}",
                    flush=True,
                )
            return 0
        print(json_module.dumps(client.status(args.target), indent=2, sort_keys=True), flush=True)
        return 0

    return _client_main(argv, build_status_parser, handler)


def _tail_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign tail ...``."""
    import json as json_module

    def handler(client, args) -> int:
        final_state = None
        for event in client.tail(args.target):
            print(json_module.dumps(event, sort_keys=True), flush=True)
            if event.get("event") == "state":
                final_state = event.get("state")
        return 0 if final_state == "merged" else 1

    return _client_main(argv, build_tail_parser, handler)


def _cancel_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign cancel ...``."""

    def handler(client, args) -> int:
        status = client.cancel(args.target)
        shards = status.get("shards") or {}
        print(
            f"[cancel] {status['id']} {status['label']}: {status['state']} — "
            f"{sum(shards.values())} journaled cell(s) kept for a future resume",
            flush=True,
        )
        return 0

    return _client_main(argv, build_cancel_parser, handler)


def _shard_forwarded_args(args, include_workers: bool = True) -> list:
    """The CLI arguments every shard subprocess inherits from orchestrate.

    The cluster templates render ``--workers`` themselves (it doubles as the
    scheduler's cpus-per-task request), so they ask for the rest only.
    """
    forwarded = ["--scale", args.scale]
    if include_workers:
        forwarded += ["--workers", str(args.workers_per_shard)]
    if args.batch_cells > 1:
        forwarded += ["--batch-cells", str(args.batch_cells)]
    if args.vectorize != "auto":
        forwarded += ["--vectorize", args.vectorize]
    if args.seed is not None:
        forwarded += ["--seed", str(args.seed)]
    if args.cache_dir is not None:
        forwarded += ["--cache-dir", str(args.cache_dir)]
    return forwarded


def _orchestrate_main(argv: Sequence[str]) -> int:
    """Entry point for ``repro-campaign orchestrate ...``."""
    from repro.runtime.backends import BackendError, build_backends
    from repro.runtime.orchestrator import (
        OrchestratorError,
        ShardOrchestrator,
        render_k8s_manifest,
        render_slurm_script,
    )

    parser = build_orchestrate_parser()
    args = parser.parse_args(argv)
    if args.shards < 1:
        parser.error("--shards must be >= 1")
    if args.workers_per_shard < 1:
        parser.error("--workers-per-shard must be >= 1")
    if args.batch_cells < 1:
        parser.error("--batch-cells must be >= 1")
    if args.max_retries < 0:
        parser.error("--max-retries must be >= 0")
    if args.poll_interval <= 0:
        parser.error("--poll-interval must be > 0")
    if args.stall_timeout is not None and args.stall_timeout <= 0:
        parser.error("--stall-timeout must be > 0")
    if args.inject_kill_shard is not None and not 1 <= args.inject_kill_shard <= args.shards:
        parser.error(
            f"--inject-kill-shard must name a shard in 1..{args.shards}, "
            f"got {args.inject_kill_shard}"
        )
    if args.dry_run and (args.emit_slurm is not None or args.emit_k8s is not None):
        parser.error(
            "--dry-run and --emit-slurm/--emit-k8s are mutually exclusive: "
            "a dry run writes nothing, template emission writes files"
        )
    try:
        backends = build_backends(args.backends or ["local"])
    except BackendError as error:
        parser.error(f"invalid --backend: {error}")
    journal_dir = args.journal_dir
    if journal_dir is None and args.output is not None:
        journal_dir = args.output / "journals"
    if journal_dir is None:
        parser.error(
            "orchestration needs the shared journal store "
            "(give --journal-dir or --output)"
        )

    if args.dry_run:
        # The dry run builds no plan (so trains no baselines) and touches no
        # disk: it resolves backend specs, previews the scheduler's
        # assignment, and prints the exact argv each shard would launch.
        orchestrator = ShardOrchestrator(
            args.experiment,
            args.shards,
            CampaignRunner(journal_dir=journal_dir),
            backends=backends,
            shard_args=_shard_forwarded_args(args),
            max_retries=args.max_retries,
        )
        print(orchestrator.render_dry_run(), flush=True)
        return 0

    if args.emit_slurm is not None or args.emit_k8s is not None:
        # Template emission renders the commands a real scheduler would run;
        # it deliberately builds no plan (clusters render at paper scale
        # without paying for baseline training on the submit host).
        template_kwargs = dict(
            journal_dir=journal_dir,
            workers_per_shard=args.workers_per_shard,
            shard_args=_shard_forwarded_args(args, include_workers=False),
        )
        for path, renderer, kind in (
            (args.emit_slurm, render_slurm_script, "Slurm array job"),
            (args.emit_k8s, render_k8s_manifest, "Kubernetes indexed Job"),
        ):
            if path is None:
                continue
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                renderer(args.experiment, args.shards, **template_kwargs),
                encoding="utf8",
            )
            print(f"[repro-campaign] wrote {kind} template to {path}", flush=True)
        return 0

    gridworld_factory, drone_factory = _SCALE_PRESETS[args.scale]
    gridworld_scale = gridworld_factory()
    drone_scale = drone_factory()
    if args.seed is not None:
        gridworld_scale = gridworld_scale.with_seed(args.seed)
        drone_scale = drone_scale.with_seed(args.seed)
    runner = CampaignRunner(
        gridworld_scale=gridworld_scale,
        drone_scale=drone_scale,
        cache=PolicyCache(args.cache_dir) if args.cache_dir is not None else None,
        journal_dir=journal_dir,
        vectorize=args.vectorize,
    )
    orchestrator = ShardOrchestrator(
        args.experiment,
        args.shards,
        runner,
        backends=backends,
        shard_args=_shard_forwarded_args(args),
        max_retries=args.max_retries,
        stall_timeout=args.stall_timeout,
        poll_interval=args.poll_interval,
        inject_kill_shard=args.inject_kill_shard,
        on_event=lambda message: print(f"[orchestrate] {message}", flush=True),
    )
    start = time.perf_counter()
    try:
        report = orchestrator.run()
    except KeyboardInterrupt:
        raise
    except OrchestratorError as error:
        print(f"[orchestrate] FAILED — {error}", file=sys.stderr, flush=True)
        if error.report is not None:
            print(error.report.render(), file=sys.stderr, flush=True)
        return 1
    except Exception as error:
        print(f"[orchestrate] FAILED — {error}", file=sys.stderr, flush=True)
        return 1
    elapsed = time.perf_counter() - start
    print(report.render(), flush=True)
    print(f"[orchestrate] {args.experiment}: done in {elapsed:.1f}s", flush=True)
    if args.output is not None and report.result is not None:
        _save(args.output, args.experiment, report.result)
    return 0


def _save(output_dir: Path, name: str, result) -> None:
    output_dir.mkdir(parents=True, exist_ok=True)
    text = result.render() if hasattr(result, "render") else str(result)
    (output_dir / f"{name}.txt").write_text(text + "\n", encoding="utf8")
    if hasattr(result, "as_dict"):
        save_json(output_dir / f"{name}.json", result.as_dict())


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the ``repro-campaign`` CLI; returns the process exit code."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    # Journal-invalidation warnings (stale fingerprints, shard mismatches)
    # come through the logging module; make them visible on stderr.
    logging.basicConfig(
        level=logging.WARNING, format="[repro-campaign] %(levelname)s: %(message)s"
    )
    if arguments[:1] == ["orchestrate"]:
        return _orchestrate_main(arguments[1:])
    if arguments[:1] == ["ingest"]:
        return _ingest_main(arguments[1:])
    if arguments[:1] == ["query"]:
        return _query_main(arguments[1:])
    if arguments[:1] == ["serve"]:
        return _serve_main(arguments[1:])
    if arguments[:1] == ["submit"]:
        return _submit_main(arguments[1:])
    if arguments[:1] == ["status"]:
        return _status_main(arguments[1:])
    if arguments[:1] == ["tail"]:
        return _tail_main(arguments[1:])
    if arguments[:1] == ["cancel"]:
        return _cancel_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)

    if args.list:
        decomposed = set(decomposed_experiment_ids())
        for experiment_id in plannable_experiment_ids():
            kind = "parallel" if experiment_id in decomposed else "single-cell"
            print(f"{experiment_id:12s} {kind}")
        return 0

    if not args.experiments:
        parser.error("no experiments given (or use --list)")
    if args.workers < 0:
        parser.error("--workers must be >= 0 (0 picks a machine-sized default)")
    if args.replicates < 1:
        parser.error("--replicates must be >= 1")
    if args.batch_cells < 1:
        parser.error("--batch-cells must be >= 1")
    shard = None
    if args.shard is not None:
        if args.merge_only:
            parser.error(
                "--shard and --merge-only are mutually exclusive: shards run cells, "
                "merge-only folds finished shard journals together"
            )
        try:
            shard = ShardSpec.parse(args.shard)
        except ValueError as error:
            parser.error(f"invalid --shard: {error}")
    journal_dir = args.journal_dir
    if journal_dir is None and args.output is not None:
        journal_dir = args.output / "journals"
    if args.resume and journal_dir is None:
        parser.error("--resume needs a journal (give --journal-dir or --output)")
    if (shard is not None or args.merge_only) and journal_dir is None:
        parser.error(
            "--shard/--merge-only need the shared journal store "
            "(give --journal-dir or --output)"
        )
    if (shard is not None or args.merge_only) and args.replicates > 1 and args.seed is None:
        # Replicate seeds derive from OS entropy when no root seed is given,
        # so every machine (and the merging run) would build a different plan
        # and the shard journals could never fingerprint-match.
        parser.error(
            "--shard/--merge-only with --replicates > 1 needs an explicit --seed "
            "so every machine derives the same replicate plans"
        )

    gridworld_factory, drone_factory = _SCALE_PRESETS[args.scale]
    workers = args.workers if args.workers != 0 else default_worker_count()
    cache = PolicyCache(args.cache_dir) if args.cache_dir is not None else None

    known = plannable_experiment_ids()
    if args.experiments == ["all"]:
        experiment_ids = known
    else:
        experiment_ids = args.experiments
        unknown = sorted(set(experiment_ids) - set(known))
        if unknown:
            parser.error(f"unknown experiments {unknown}; available: {known}")

    base_seed = args.seed
    replicate_seeds = (
        derive_cell_seeds(base_seed, args.replicates) if args.replicates > 1 else [base_seed]
    )

    exit_code = 0
    for replicate, seed in enumerate(replicate_seeds):
        gridworld_scale = gridworld_factory()
        drone_scale = drone_factory()
        if seed is not None:
            gridworld_scale = gridworld_scale.with_seed(seed)
            drone_scale = drone_scale.with_seed(seed)
        runner = CampaignRunner(
            gridworld_scale=gridworld_scale,
            drone_scale=drone_scale,
            cache=cache,
            workers=workers,
            batch_size=args.batch_cells,
            journal_dir=journal_dir,
            resume=args.resume,
            shard=shard,
            vectorize=args.vectorize,
        )
        suffix = f"@r{replicate}" if args.replicates > 1 else ""
        if args.replicates > 1:
            # Record the derived seed so any single replicate can be rerun
            # exactly with --replicates 1 --seed <seed>.
            print(f"[repro-campaign] replicate {replicate}: seed={seed}", flush=True)
        for experiment_id in experiment_ids:
            label = f"{experiment_id}{suffix}"
            start = time.perf_counter()
            try:
                # Plan building can fail too (corrupt cache entries, baseline
                # training errors), so it sits inside the per-artifact guard.
                plan = runner.plan(experiment_id)
                if (shard is not None or args.merge_only) and plan.cell_count <= 1:
                    # Single-cell plans (fig3e, fig9) have no journal and
                    # nothing to partition; skip them so `all --shard k/n`
                    # stays usable, instead of failing every machine.
                    print(
                        f"[repro-campaign] {label}: SKIPPED — single-cell plans "
                        "cannot be sharded or shard-merged; run this artifact "
                        "without --shard/--merge-only",
                        flush=True,
                    )
                    continue
                if args.merge_only:
                    print(
                        f"[repro-campaign] {label}: merging shard journals "
                        f"({plan.cell_count} cells, no execution)...",
                        flush=True,
                    )
                    result = runner.merge_shards(plan, name=label)
                else:
                    # Journals are per label, so each replicate resumes its own.
                    journal = runner.journal_for(plan, name=label)
                    journaled = len(journal.load()) if journal is not None and args.resume else 0
                    if shard is not None:
                        assigned = len(shard.cell_indices(plan.cell_count))
                        progress = (
                            f"shard {shard.describe()}: {assigned}/{plan.cell_count} "
                            f"cells on {workers} worker(s)"
                        )
                    else:
                        progress = f"{plan.cell_count} cells on {workers} worker(s)"
                    if args.batch_cells > 1:
                        progress += f", batches of {args.batch_cells}"
                    if journaled:
                        progress += f", {journaled} already journaled"
                    print(f"[repro-campaign] {label}: {progress}...", flush=True)
                    result = runner.run_plan(plan, journal=journal)
            except KeyboardInterrupt:
                raise
            except Exception as error:
                # Keep going so a multi-artifact run reports every failure.
                print(f"[repro-campaign] {label}: FAILED — {error}", file=sys.stderr, flush=True)
                exit_code = 1
                continue
            elapsed = time.perf_counter() - start
            if isinstance(result, ShardRunReport):
                # A shard run has no merged payload to store or save — its
                # deliverable is the shard journal.
                print(f"[repro-campaign] {label}: {result.render()}", flush=True)
                print(f"[repro-campaign] {label}: done in {elapsed:.1f}s", flush=True)
                continue
            runner.results[experiment_id] = result
            print(f"[repro-campaign] {label}: done in {elapsed:.1f}s", flush=True)
            if args.output is not None:
                _save(args.output, label, result)
        print(runner.report())
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
