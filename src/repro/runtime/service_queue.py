"""Priority + per-tenant-quota admission for the campaign service.

The campaign service multiplexes many concurrent campaigns over one shared
backend roster.  Raw :class:`~repro.runtime.scheduler.BackendScheduler` slot
accounting is not enough for that: a burst of shard launches from one tenant
would starve everyone else, and two campaigns racing for the last slot would
resolve in event-loop wakeup order — unobservable and unreproducible.  This
module supplies the missing policy layer, split so it stays testable:

* :class:`QuotaQueue` is the **synchronous, deterministic core**: a waiting
  list of :class:`Ticket` admission requests ordered by (priority desc,
  submission order), with per-tenant quotas (max concurrently *granted*
  admissions per tenant).  Given the same submission/grant/release sequence
  it always makes the same decisions — which is exactly what the Hypothesis
  property suite (``tests/properties/test_property_service_queue.py``)
  drives at random.
* :class:`ServiceDispatcher` is the **asyncio shell**: one condition variable
  over a :class:`QuotaQueue` *and* a ``BackendScheduler``, so "who launches
  next" is decided by a single deterministic rule — the head ticket of the
  queue proceeds as soon as a backend slot it may use frees up — instead of
  by which coroutine the event loop happens to wake first.  Every grant is
  appended to :attr:`ServiceDispatcher.dispatch_log` under the same lock, so
  the log order *is* the grant order.

A ticket whose tenant is at quota is skipped over (the next eligible ticket
is the head) rather than blocking the queue — quotas bound tenants, they must
never deadlock the service.  Within one tenant, and across tenants below
quota, higher priority always dispatches first and equal priority dispatches
in submission order, so no ticket is starved: every release re-examines the
queue from the top.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.backends import ExecutionBackend
from repro.runtime.scheduler import BackendScheduler


class QuotaError(ValueError):
    """An admission request or quota table was invalid."""


@dataclass(frozen=True)
class Ticket:
    """One pending admission request (one shard launch wanting to start).

    ``seq`` is the service-wide submission sequence number; together with
    ``priority`` it totally orders tickets (see :attr:`sort_key`), which is
    what makes dispatch deterministic.
    """

    seq: int
    tenant: str
    priority: int

    @property
    def sort_key(self) -> Tuple[int, int]:
        """Total dispatch order: higher priority first, then submission order."""
        return (-self.priority, self.seq)


class QuotaQueue:
    """Deterministic priority queue with per-tenant concurrency quotas.

    Purely synchronous: callers :meth:`submit` a ticket, ask which ticket is
    :meth:`grantable` right now, :meth:`grant` it when its launch proceeds,
    and :meth:`release` the tenant's slot when the launch finishes.  The
    async layering (waiting for a grant) lives in
    :class:`ServiceDispatcher`, keeping this core property-testable without
    an event loop.
    """

    def __init__(
        self,
        quotas: Optional[Dict[str, int]] = None,
        default_quota: Optional[int] = None,
    ) -> None:
        for tenant, quota in (quotas or {}).items():
            if quota < 1:
                raise QuotaError(f"quota for tenant {tenant!r} must be >= 1, got {quota}")
        if default_quota is not None and default_quota < 1:
            raise QuotaError(f"default quota must be >= 1, got {default_quota}")
        self._quotas: Dict[str, int] = dict(quotas or {})
        self._default_quota = default_quota
        self._sequence = itertools.count(1)
        self._waiting: List[Ticket] = []
        self._granted: Dict[str, int] = {}

    # ------------------------------------------------------------------ state
    def quota(self, tenant: str) -> Optional[int]:
        """The concurrency quota of ``tenant`` (``None`` = unbounded)."""
        return self._quotas.get(tenant, self._default_quota)

    def granted(self, tenant: str) -> int:
        """How many admissions ``tenant`` currently holds."""
        return self._granted.get(tenant, 0)

    @property
    def waiting(self) -> List[Ticket]:
        """The pending tickets in dispatch order (a copy)."""
        return sorted(self._waiting, key=lambda ticket: ticket.sort_key)

    def describe_quotas(self) -> List[Tuple[str, str, int]]:
        """Rows of ``(tenant, quota, in_use)`` for every known tenant, sorted.

        Tenants appear once they have an explicit quota or have ever held an
        admission; the default quota is rendered under the pseudo-tenant
        ``*`` when set.
        """
        tenants = sorted(set(self._quotas) | set(self._granted))
        rows = []
        if self._default_quota is not None:
            rows.append(("*", str(self._default_quota), 0))
        for tenant in tenants:
            quota = self.quota(tenant)
            rows.append((tenant, "unbounded" if quota is None else str(quota), self.granted(tenant)))
        return rows

    # ------------------------------------------------------------- transitions
    def submit(self, tenant: str, priority: int = 0) -> Ticket:
        """Enqueue one admission request and return its ticket."""
        if not tenant:
            raise QuotaError("tenant must be a non-empty string")
        ticket = Ticket(seq=next(self._sequence), tenant=str(tenant), priority=int(priority))
        self._waiting.append(ticket)
        return ticket

    def withdraw(self, ticket: Ticket) -> None:
        """Remove a pending ticket (the requester was cancelled); idempotent."""
        try:
            self._waiting.remove(ticket)
        except ValueError:
            pass

    def _has_headroom(self, tenant: str) -> bool:
        """Whether ``tenant`` may hold one more admission right now."""
        quota = self.quota(tenant)
        return quota is None or self.granted(tenant) < quota

    def grantable(self) -> Optional[Ticket]:
        """The single ticket that dispatches next, or ``None``.

        The best-ordered ticket (priority desc, then submission order) whose
        tenant has quota headroom.  Quota-blocked tickets are *skipped*, not
        waited on: a saturated tenant never holds up the rest of the queue.
        """
        eligible = [t for t in self._waiting if self._has_headroom(t.tenant)]
        if not eligible:
            return None
        return min(eligible, key=lambda ticket: ticket.sort_key)

    def grant(self, ticket: Ticket) -> None:
        """Mark a pending ticket as dispatched, consuming tenant headroom."""
        if ticket not in self._waiting:
            raise QuotaError(f"ticket {ticket} is not pending")
        if not self._has_headroom(ticket.tenant):
            raise QuotaError(
                f"tenant {ticket.tenant!r} is at quota "
                f"({self.granted(ticket.tenant)}/{self.quota(ticket.tenant)})"
            )
        self._waiting.remove(ticket)
        self._granted[ticket.tenant] = self.granted(ticket.tenant) + 1

    def release(self, tenant: str) -> None:
        """Return one of ``tenant``'s granted admissions."""
        if self.granted(tenant) < 1:
            raise QuotaError(f"release without grant for tenant {tenant!r}")
        self._granted[tenant] -= 1


class ServiceDispatcher:
    """Asyncio dispatcher fusing quota admission with backend slot assignment.

    One :class:`asyncio.Condition` guards both the :class:`QuotaQueue` and
    the wrapped :class:`~repro.runtime.scheduler.BackendScheduler`, so the
    decision "which waiting launch takes the slot that just freed" has
    exactly one answer: the queue's current :meth:`~QuotaQueue.grantable`
    head, as soon as a backend it may use has a free slot.  The scheduler's
    own most-free-slots backend choice is unchanged — this class decides
    *who* goes next, the scheduler still decides *where*.
    """

    def __init__(
        self,
        scheduler: BackendScheduler,
        *,
        quotas: Optional[Dict[str, int]] = None,
        default_quota: Optional[int] = None,
    ) -> None:
        self.scheduler = scheduler
        self.queue = QuotaQueue(quotas, default_quota)
        self._condition = asyncio.Condition()
        #: Every grant, in grant order: dicts of at least ``tenant``,
        #: ``priority``, ``backend`` plus whatever ``meta`` the acquirer
        #: attached (the service attaches campaign id and label).
        self.dispatch_log: List[dict] = []

    async def acquire(
        self,
        tenant: str,
        priority: int = 0,
        *,
        avoid: Optional[ExecutionBackend] = None,
        meta: Optional[dict] = None,
    ) -> ExecutionBackend:
        """Wait until this request is the dispatch head, then take a slot.

        Returns the backend the launch should run on.  On cancellation the
        pending ticket is withdrawn, so a cancelled campaign never wedges
        the queue.
        """
        async with self._condition:
            ticket = self.queue.submit(tenant, priority)
            try:
                while True:
                    if self.queue.grantable() is ticket:
                        backend = self.scheduler.try_acquire(avoid=avoid)
                        if backend is not None:
                            self.queue.grant(ticket)
                            self.dispatch_log.append(
                                {
                                    **(meta or {}),
                                    "tenant": ticket.tenant,
                                    "priority": ticket.priority,
                                    "backend": backend.name,
                                }
                            )
                            self._condition.notify_all()
                            return backend
                    await self._condition.wait()
            except asyncio.CancelledError:
                self.queue.withdraw(ticket)
                self._condition.notify_all()
                raise

    async def release(self, tenant: str, backend: ExecutionBackend) -> None:
        """Return a backend slot and the tenant's admission; wake waiters."""
        async with self._condition:
            self.scheduler.release_nowait(backend)
            self.queue.release(tenant)
            self._condition.notify_all()

    def has_headroom(self, tenant: str, *, avoid: Optional[ExecutionBackend] = None) -> bool:
        """Whether an ``acquire`` for ``tenant`` could proceed without waiting."""
        quota = self.queue.quota(tenant)
        if quota is not None and self.queue.granted(tenant) >= quota:
            return False
        return self.scheduler.has_free_slot(avoid=avoid)


__all__ = ["QuotaError", "QuotaQueue", "ServiceDispatcher", "Ticket"]
