"""Registry of vectorized *group runners* for campaign cell functions.

A group runner evaluates a batch of same-function campaign cells through the
lockstep (vectorized) path — one vector environment and one stacked policy
per group instead of one python episode loop per cell — and returns the
per-cell outputs in cell order, bitwise identical to calling the cell
function once per cell.  Experiment modules register their runners at import
time; pool workers repopulate the registry automatically because unpickling a
cell's ``fn`` imports its defining module.

The registry is keyed by the cell function *object*, so registration and
lookup always agree with what the plan builders put into their cells.  The
campaign runner consults it according to ``--vectorize``:

* ``auto`` (default) — groups consecutive same-function cells through their
  registered runner; functions without one run serially.
* ``on`` — like ``auto`` but raises :class:`~repro.runtime.runner.CampaignError`
  for any cell whose function has no registered runner (CI identity jobs use
  this to guarantee the vectorized path actually ran).
* ``off`` — never consults the registry; every cell runs serially.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

#: The accepted ``--vectorize`` modes.
VECTORIZE_MODES = ("auto", "on", "off")

#: Cap on cells fused into one lockstep group: bounds peak memory (lanes =
#: cells x agents) while keeping the python-overhead amortization win.
GROUP_CELL_CAP = 32

GroupRunner = Callable[[List[dict]], List[object]]

_GROUP_RUNNERS: Dict[Callable, GroupRunner] = {}


def validate_vectorize_mode(mode: str) -> str:
    """Validate and normalize a ``--vectorize`` mode string."""
    if mode not in VECTORIZE_MODES:
        raise ValueError(
            f"vectorize must be one of {VECTORIZE_MODES}, got {mode!r}"
        )
    return mode


def register_group_runner(fn: Callable, runner: GroupRunner) -> None:
    """Register ``runner`` as the vectorized evaluator for cells calling ``fn``.

    ``runner`` receives the cells' *resolved* keyword-argument dicts (policy
    refs already materialized) in cell order and must return one output per
    cell, each bitwise identical to ``fn(**kwargs)``.  Passing ``None``
    removes any existing registration.
    """
    if runner is None:
        _GROUP_RUNNERS.pop(fn, None)
    else:
        _GROUP_RUNNERS[fn] = runner


def group_runner_for(fn: Callable) -> Optional[GroupRunner]:
    """The registered group runner for ``fn``, or ``None``."""
    return _GROUP_RUNNERS.get(fn)


def has_group_runner(fn: Callable) -> bool:
    """Whether a vectorized group runner is registered for ``fn``."""
    return fn in _GROUP_RUNNERS


def registered_functions() -> List[Callable]:
    """The cell functions with registered group runners (introspection/tests)."""
    return list(_GROUP_RUNNERS)


__all__ = [
    "GROUP_CELL_CAP",
    "VECTORIZE_MODES",
    "group_runner_for",
    "has_group_runner",
    "register_group_runner",
    "registered_functions",
    "validate_vectorize_mode",
]
