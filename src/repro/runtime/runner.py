"""The parallel fault-injection campaign runner.

:class:`CampaignRunner` executes campaign plans on a ``concurrent.futures``
process pool.  Cells are submitted in plan order and their outputs merged in
plan order, so a pool of any size produces byte-identical result payloads to
the serial fallback (``workers=1``), which in turn is the exact code path the
experiment functions themselves run.

Worker failures are surfaced as :class:`CellExecutionError` naming the failed
cell; a worker process dying outright (segfault, OOM kill) raises the same
error with the pool's diagnostic chained.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache
from repro.runtime.cells import CampaignPlan, CellTask
from repro.runtime.plans import CampaignContext, build_plan, plannable_experiment_ids


class CampaignError(RuntimeError):
    """Base error for campaign execution failures."""


class CellExecutionError(CampaignError):
    """A campaign cell raised (or its worker process died)."""

    def __init__(self, cell: CellTask, message: str) -> None:
        super().__init__(f"campaign cell {cell.describe()} failed: {message}")
        self.cell = cell


def _run_cell(cell: CellTask):
    """Module-level trampoline so cells pickle cleanly into pool workers."""
    return cell.run()


def default_worker_count() -> int:
    """A sensible default worker count: the machine's CPUs, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


class CampaignRunner:
    """Decompose registered artifacts into cells and run them on a pool.

    ``workers=1`` (the default) executes every plan serially in-process and is
    bit-identical to calling the experiment functions directly;
    ``workers=N`` fans the cells out over ``N`` processes and merges the
    outputs in deterministic plan order, so the result payloads are identical
    to the serial run's.
    """

    def __init__(
        self,
        gridworld_scale: Optional[GridWorldScale] = None,
        drone_scale: Optional[DroneScale] = None,
        cache: Optional[PolicyCache] = None,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
    ) -> None:
        self.context = CampaignContext.create(gridworld_scale, drone_scale, cache)
        self.workers = max(1, int(workers)) if workers is not None else 1
        self.mp_context = mp_context
        self.results: Dict[str, object] = {}

    # ------------------------------------------------------------------- plans
    @property
    def experiment_ids(self) -> List[str]:
        """Identifiers of every runnable paper artifact."""
        return plannable_experiment_ids()

    def plan(self, experiment_id: str) -> CampaignPlan:
        """Build (but do not run) the plan for ``experiment_id``."""
        return build_plan(experiment_id, self.context)

    # --------------------------------------------------------------- execution
    def run(self, experiment_id: str):
        """Run one artifact, parallel when workers allow, and store the result."""
        result = self.run_plan(self.plan(experiment_id))
        self.results[experiment_id] = result
        return result

    def run_all(self, experiment_ids: Optional[List[str]] = None) -> Dict[str, object]:
        """Run several artifacts (default: all) and return the result map."""
        for experiment_id in experiment_ids or self.experiment_ids:
            self.run(experiment_id)
        return dict(self.results)

    def run_plan(self, plan: CampaignPlan):
        """Execute an explicit plan through the configured executor.

        With ``workers > 1`` every plan goes through the pool — including
        single-cell fallback plans, which then run off the main process.
        """
        if self.workers <= 1 or plan.cell_count == 0:
            return plan.run_serial()
        outputs = self._map_cells(plan.cells)
        return plan.merge(outputs)

    def _map_cells(self, cells: List[CellTask]) -> List[object]:
        context = multiprocessing.get_context(self.mp_context)
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(cells)), mp_context=context
        )
        try:
            futures = [pool.submit(_run_cell, cell) for cell in cells]
            outputs = []
            for cell, future in zip(cells, futures):
                try:
                    outputs.append(future.result())
                except BrokenProcessPool as exc:
                    # The executor cannot attribute the crash, so don't claim
                    # this particular cell caused it.
                    raise CellExecutionError(
                        cell,
                        "a worker process died before this cell's result was "
                        "returned (the crash may have occurred in any in-flight "
                        "cell)",
                    ) from exc
                except CampaignError:
                    raise
                except Exception as exc:
                    raise CellExecutionError(cell, f"{type(exc).__name__}: {exc}") from exc
            return outputs
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # ---------------------------------------------------------------- reporting
    def report(self) -> str:
        """Plain-text report of every merged result collected so far."""
        sections = []
        for experiment_id in sorted(self.results):
            result = self.results[experiment_id]
            rendered = result.render() if hasattr(result, "render") else str(result)
            sections.append(f"=== {experiment_id} ===\n{rendered}")
        return "\n\n".join(sections)
