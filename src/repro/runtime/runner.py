"""The parallel fault-injection campaign runner.

:class:`CampaignRunner` executes campaign plans on a ``concurrent.futures``
process pool.  Cells are submitted in plan order and their outputs merged in
plan order, so a pool of any size produces byte-identical result payloads to
the serial fallback (``workers=1``), which in turn is the exact code path the
experiment functions themselves run.

Three scaling features layer on top of the basic fan-out:

* **Per-worker policy residency** — cells reference pretrained baselines by
  :class:`~repro.runtime.residency.PolicyRef`; a pool initializer makes every
  referenced policy resident once per worker, so submission payloads stay
  small (no per-cell state-dict pickling).
* **Cell batching** (``batch_size``) — small cells are grouped into one pool
  submission to amortize process round-trips, e.g. on single-core hosts.
* **Vectorized cell groups** (``vectorize="auto"|"on"|"off"``) — consecutive
  cells sharing a function with a registered group runner (see
  :mod:`repro.runtime.vectorize`) evaluate through one lockstep pass per
  group, inside each batch; ``docs/PERFORMANCE.md`` explains what this buys
  and why the payloads stay byte-identical.
* **Streaming journals** (``journal_dir`` / an explicit
  :class:`~repro.runtime.journal.CampaignJournal`) — completed cell outputs
  are appended to a per-artifact JSONL file as they arrive, and a run with
  ``resume=True`` skips already-journaled cells, producing a byte-identical
  merged payload after an interruption.
* **Multi-machine sharding** (``shard="k/n"`` + :meth:`CampaignRunner.merge_shards`)
  — each machine runs a disjoint strided subset of cell indices into its own
  shard journal; once every shard journal has landed in the shared
  ``journal_dir``, any machine merges them into the byte-identical unsharded
  payload without executing a cell (see :mod:`repro.runtime.sharding`).

Worker failures are surfaced as :class:`CellExecutionError` naming the failed
cell; a worker process dying outright (segfault, OOM kill) raises the same
error with the pool's diagnostic chained.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache
from repro.runtime.cells import CampaignPlan, CellTask
from repro.runtime.journal import CampaignJournal
from repro.runtime.plans import CampaignContext, build_plan, plannable_experiment_ids
from repro.runtime.residency import (
    PolicyRef,
    collect_policy_refs,
    preload_policy_refs,
    resolve_policy_kwargs,
)
from repro.runtime.sharding import ShardRunReport, ShardSpec, load_shard_outputs
from repro.runtime.vectorize import (
    GROUP_CELL_CAP,
    group_runner_for,
    has_group_runner,
    validate_vectorize_mode,
)


class CampaignError(RuntimeError):
    """Base error for campaign execution failures."""


class CellExecutionError(CampaignError):
    """A campaign cell raised (or its worker process died)."""

    def __init__(self, cell: CellTask, message: str) -> None:
        super().__init__(f"campaign cell {cell.describe()} failed: {message}")
        self.cell = cell
        self.message = message

    def __reduce__(self):
        # Exceptions raised inside pool workers are pickled back to the
        # parent; the default reduction would replay __init__ with the
        # formatted string, so reconstruct from the original arguments.
        return (type(self), (self.cell, self.message))


def _run_cell_batch(cells: Sequence[CellTask], vectorize: str = "off") -> List[object]:
    """Run a batch of cells in a pool worker, in order.

    With ``vectorize`` other than ``"off"``, consecutive cells sharing a
    function with a registered group runner (see
    :mod:`repro.runtime.vectorize`) are evaluated through one lockstep call —
    this is how a whole ``--batch-cells`` group becomes one vectorized pass.
    ``"on"`` additionally *requires* a group runner for every cell.

    Wraps any cell failure in :class:`CellExecutionError` *inside* the worker,
    so the parent can attribute the failure to the exact cell even when
    several cells share one submission.
    """
    outputs: List[object] = []
    cursor = 0
    while cursor < len(cells):
        cell = cells[cursor]
        runner = group_runner_for(cell.fn) if vectorize != "off" else None
        if vectorize == "on" and runner is None:
            raise CampaignError(
                f"--vectorize on: no vectorized group runner is registered for "
                f"{getattr(cell.fn, '__name__', cell.fn)!r} "
                f"(cell {cell.describe()}); use --vectorize auto or off"
            )
        if runner is None:
            try:
                outputs.append(cell.run())
            except Exception as exc:
                raise CellExecutionError(cell, f"{type(exc).__name__}: {exc}") from exc
            cursor += 1
            continue
        group = [cell]
        while (
            cursor + len(group) < len(cells)
            and cells[cursor + len(group)].fn is cell.fn
            and len(group) < GROUP_CELL_CAP
        ):
            group.append(cells[cursor + len(group)])
        try:
            resolved = [resolve_policy_kwargs(member.kwargs) for member in group]
            group_outputs = list(runner(resolved))
        except Exception as exc:
            raise CellExecutionError(
                cell,
                f"vectorized group of {len(group)} cells failed with "
                f"{type(exc).__name__}: {exc}",
            ) from exc
        if len(group_outputs) != len(group):
            raise CellExecutionError(
                cell,
                f"vectorized group runner returned {len(group_outputs)} outputs "
                f"for {len(group)} cells",
            )
        outputs.extend(group_outputs)
        cursor += len(group)
    return outputs


def default_worker_count() -> int:
    """A sensible default worker count: the *schedulable* CPUs, capped at 8.

    ``os.cpu_count()`` reports the machine's CPUs, which overcounts in
    cgroup-limited CI containers; prefer ``os.process_cpu_count()`` (3.13+)
    or the scheduling affinity mask when available.
    """
    process_cpu_count = getattr(os, "process_cpu_count", None)
    if process_cpu_count is not None:
        count = process_cpu_count()
    elif hasattr(os, "sched_getaffinity"):
        count = len(os.sched_getaffinity(0))
    else:
        count = os.cpu_count()
    return max(1, min(count or 1, 8))


class CampaignRunner:
    """Decompose registered artifacts into cells and run them on a pool.

    ``workers=1`` (the default) executes every plan serially in-process and is
    bit-identical to calling the experiment functions directly;
    ``workers=N`` fans the cells out over ``N`` processes and merges the
    outputs in deterministic plan order, so the result payloads are identical
    to the serial run's.

    ``batch_size=N`` groups up to ``N`` cells into one pool submission.
    ``journal_dir`` enables streaming result persistence (one
    ``<experiment_id>.jsonl`` per artifact); with ``resume=True``,
    already-journaled cells of a matching plan are skipped.

    ``shard="k/n"`` (or a :class:`~repro.runtime.sharding.ShardSpec`) runs
    only the cells the strided partition assigns to shard *k* of *n*,
    journaling them to ``<label>.shard-k-of-n.jsonl``; the run returns a
    :class:`~repro.runtime.sharding.ShardRunReport` and never merges.
    :meth:`merge_shards` is the other half: it folds a complete set of shard
    journals into the merged result without executing a cell.
    """

    def __init__(
        self,
        gridworld_scale: Optional[GridWorldScale] = None,
        drone_scale: Optional[DroneScale] = None,
        cache: Optional[PolicyCache] = None,
        workers: Optional[int] = None,
        mp_context: Optional[str] = None,
        batch_size: int = 1,
        journal_dir: Optional[Path] = None,
        resume: bool = False,
        shard: Optional[object] = None,
        vectorize: str = "auto",
    ) -> None:
        self.context = CampaignContext.create(gridworld_scale, drone_scale, cache)
        self.workers = max(1, int(workers)) if workers is not None else 1
        self.mp_context = mp_context
        self.batch_size = max(1, int(batch_size))
        self.vectorize = validate_vectorize_mode(vectorize)
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self.resume = resume
        if shard is not None and not isinstance(shard, ShardSpec):
            shard = ShardSpec.parse(shard)
        self.shard: Optional[ShardSpec] = shard
        self.results: Dict[str, object] = {}

    # ------------------------------------------------------------------- plans
    @property
    def experiment_ids(self) -> List[str]:
        """Identifiers of every runnable paper artifact."""
        return plannable_experiment_ids()

    def plan(self, experiment_id: str) -> CampaignPlan:
        """Build (but do not run) the plan for ``experiment_id``."""
        return build_plan(experiment_id, self.context)

    def journal_for(self, plan: CampaignPlan, name: Optional[str] = None):
        """The streaming journal for ``plan`` under ``journal_dir`` (or None).

        Single-cell plans are not journaled: their only cell either completed
        (the run finished) or did not, so there is nothing to resume — and
        fallback cells return result objects rather than JSON-native values.

        With a ``shard`` configured the journal is the shard journal
        (``<label>.shard-k-of-n.jsonl``) and its header records the shard
        coordinates, so whole-plan and shard journals can never be confused.
        """
        if self.journal_dir is None or plan.cell_count <= 1:
            return None
        label = name or plan.experiment_id
        if self.shard is not None:
            return CampaignJournal(
                self.shard.journal_path(self.journal_dir, label),
                plan,
                shard=(self.shard.index, self.shard.count),
            )
        return CampaignJournal(self.journal_dir / f"{label}.jsonl", plan)

    # --------------------------------------------------------------- execution
    def run(self, experiment_id: str):
        """Run one artifact, parallel when workers allow, and store the result."""
        plan = self.plan(experiment_id)
        result = self.run_plan(plan, journal=self.journal_for(plan))
        self.results[experiment_id] = result
        return result

    def run_all(self, experiment_ids: Optional[List[str]] = None) -> Dict[str, object]:
        """Run several artifacts (default: all) and return the result map."""
        for experiment_id in experiment_ids or self.experiment_ids:
            self.run(experiment_id)
        return dict(self.results)

    def run_plan(self, plan: CampaignPlan, journal: Optional[CampaignJournal] = None):
        """Execute an explicit plan through the configured executor.

        With ``workers > 1`` every plan goes through the pool — including
        single-cell fallback plans, which then run off the main process.
        With a ``journal``, completed cell outputs stream to disk as they
        arrive, and ``resume=True`` skips cells the journal already holds;
        merge inputs then come from their JSON-decoded form in both the
        journaled and the resumed run, keeping the payloads byte-identical.

        With a configured ``shard`` only that shard's cells run (journaled to
        the shard journal) and the return value is a
        :class:`~repro.runtime.sharding.ShardRunReport` — sharded runs refuse
        to merge, because no single shard holds every cell output.
        """
        if self.shard is not None:
            return self._run_shard(plan, journal)
        if journal is None:
            if plan.cell_count == 0 or (self.workers <= 1 and self.vectorize == "off"):
                return plan.run_serial()
            outputs = self._execute(plan.cells, list(range(plan.cell_count)), None)
            return plan.merge(outputs)
        completed = journal.load() if self.resume else {}
        journal.start(completed)
        try:
            outputs = self._execute(plan.cells, self._pending(plan, completed), journal)
            for index, output in completed.items():
                outputs[index] = output
            return plan.merge(outputs)
        finally:
            journal.close()

    @staticmethod
    def _pending(plan: CampaignPlan, completed: Dict[int, object]) -> List[int]:
        return [index for index in range(plan.cell_count) if index not in completed]

    # ---------------------------------------------------------------- sharding
    def _run_shard(self, plan: CampaignPlan, journal: Optional[CampaignJournal]):
        """Run only this runner's shard of ``plan``, journaling every cell."""
        if journal is None:
            raise CampaignError(
                f"sharded execution of {plan.experiment_id!r} requires a streaming "
                "journal: configure journal_dir (CLI: --journal-dir or --output), and "
                "note that single-cell plans cannot be sharded — run them unsharded"
            )
        assigned = self.shard.cell_indices(plan.cell_count)
        completed = journal.load() if self.resume else {}
        journal.start(completed)
        pending = [index for index in assigned if index not in completed]
        try:
            self._execute(plan.cells, pending, journal)
        finally:
            journal.close()
        return ShardRunReport(
            experiment_id=plan.experiment_id,
            shard=self.shard,
            cell_count=plan.cell_count,
            assigned=len(assigned),
            executed=len(pending),
            resumed=len(assigned) - len(pending),
            journal_path=journal.path,
        )

    def merge_shards(self, plan: CampaignPlan, name: Optional[str] = None):
        """Merge a complete set of shard journals — never executing a cell.

        Validates every ``<label>.shard-k-of-n.jsonl`` under ``journal_dir``
        against the plan's machine-independent fingerprint, verifies the
        journaled indices cover the whole plan (raising
        :class:`~repro.runtime.sharding.ShardMergeError` naming the missing
        cells and shards otherwise), and merges in plan order.  Outputs are
        consumed in their JSON-decoded form — exactly as a journaled
        single-machine run consumes them — so the merged payload is
        byte-identical to an unsharded run.
        """
        if self.journal_dir is None:
            raise CampaignError(
                "merge_shards requires journal_dir — the directory holding the "
                "shard journals (CLI: --journal-dir or --output)"
            )
        outputs_by_index = load_shard_outputs(plan, self.journal_dir, name)
        return plan.merge([outputs_by_index[index] for index in range(plan.cell_count)])

    def _execute(
        self,
        cells: List[CellTask],
        pending: List[int],
        journal: Optional[CampaignJournal],
    ) -> List[object]:
        """Run the pending cells and return the (sparse) output list.

        Outputs land at their cell's plan index; positions of already-completed
        cells stay ``None`` for the caller to fill from the journal.
        """
        outputs: List[object] = [None] * len(cells)

        def deliver(index: int, output: object) -> None:
            """Journal (when enabled) and slot one completed cell output."""
            outputs[index] = journal.record(index, output) if journal is not None else output

        if not pending:
            return outputs
        if self.workers <= 1:
            # Group consecutive same-function cells so the serial path also
            # benefits from (and exercises) the vectorized lockstep runners;
            # each group journals as soon as it completes.
            for group in self._serial_groups(cells, pending):
                group_outputs = _run_cell_batch(
                    [cells[index] for index in group], self.vectorize
                )
                for index, output in zip(group, group_outputs):
                    deliver(index, output)
            return outputs
        batches = [
            pending[start : start + self.batch_size]
            for start in range(0, len(pending), self.batch_size)
        ]
        self._map_batches(cells, batches, deliver)
        return outputs

    def _serial_groups(
        self, cells: List[CellTask], pending: List[int]
    ) -> List[List[int]]:
        """Split pending indices into journal-granularity execution groups.

        Consecutive indices whose cells share a function with a registered
        group runner fuse into one group (capped at
        :data:`~repro.runtime.vectorize.GROUP_CELL_CAP`); everything else runs
        as singleton groups, matching the historical cell-at-a-time loop.
        """
        if self.vectorize == "off":
            return [[index] for index in pending]
        groups: List[List[int]] = []
        for index in pending:
            fn = cells[index].fn
            if (
                groups
                and cells[groups[-1][-1]].fn is fn
                and has_group_runner(fn)
                and len(groups[-1]) < GROUP_CELL_CAP
            ):
                groups[-1].append(index)
            else:
                groups.append([index])
        return groups

    def _map_batches(self, cells, batches, deliver) -> None:
        refs = collect_policy_refs(cells[index] for batch in batches for index in batch)
        context = multiprocessing.get_context(self.mp_context)
        pool = ProcessPoolExecutor(
            max_workers=min(self.workers, len(batches)),
            mp_context=context,
            initializer=preload_policy_refs,
            initargs=(refs,),
        )
        try:
            futures = {
                pool.submit(
                    _run_cell_batch, [cells[index] for index in batch], self.vectorize
                ): batch
                for batch in batches
            }
            # Stream completions as they arrive so the journal captures every
            # finished cell even if a later batch (or the campaign) dies.
            for future in as_completed(futures):
                batch = futures[future]
                try:
                    batch_outputs = future.result()
                except BrokenProcessPool as exc:
                    # The executor cannot attribute the crash, so don't claim
                    # this particular cell caused it.
                    raise CellExecutionError(
                        cells[batch[0]],
                        "a worker process died before this cell's result was "
                        "returned (the crash may have occurred in any in-flight "
                        "cell)",
                    ) from exc
                except CampaignError:
                    raise
                except Exception as exc:
                    raise CellExecutionError(
                        cells[batch[0]], f"{type(exc).__name__}: {exc}"
                    ) from exc
                for index, output in zip(batch, batch_outputs):
                    deliver(index, output)
        finally:
            pool.shutdown(wait=True, cancel_futures=True)

    # ---------------------------------------------------------------- reporting
    def report(self) -> str:
        """Plain-text report of every merged result collected so far."""
        sections = []
        for experiment_id in sorted(self.results):
            result = self.results[experiment_id]
            rendered = result.render() if hasattr(result, "render") else str(result)
            sections.append(f"=== {experiment_id} ===\n{rendered}")
        return "\n\n".join(sections)


# Re-exported for callers that need to type-annotate refs without importing
# the residency module directly.
__all__ = [
    "CampaignError",
    "CampaignRunner",
    "CellExecutionError",
    "PolicyRef",
    "ShardRunReport",
    "ShardSpec",
    "default_worker_count",
]
