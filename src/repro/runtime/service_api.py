"""Client/server seam of the campaign service: HTTP/1.1 over a Unix socket.

Stdlib-only on both sides.  The server is a thin asyncio adapter from wire
requests to :class:`~repro.runtime.service.CampaignService` calls:

====== ============================ ==========================================
Method Path                         Meaning
====== ============================ ==========================================
GET    ``/health``                  roster, quotas, campaign-state counts
GET    ``/campaigns``               status of every campaign
POST   ``/campaigns``               submit (JSON :class:`CampaignSpec` body);
                                    409 with the in-flight fingerprint when
                                    the label is already running
GET    ``/campaigns/<id>``          one campaign's status (id or label)
GET    ``/campaigns/<id>/tail``     live progress stream — NDJSON by default,
                                    SSE with ``?format=sse``
DELETE ``/campaigns/<id>``          cancel: group-kill shards, journal it
====== ============================ ==========================================

Streaming responses carry no ``Content-Length`` and are delimited by
connection close (every response sends ``Connection: close``), which keeps
the protocol a strict, curl-compatible subset of HTTP/1.1 with none of
chunked encoding's complexity.  A client that disconnects mid-stream (or
mid-anything) only ever tears down its own handler: the write raises, the
handler's ``finally`` closes the transport, and the daemon keeps serving —
the fd-leak chaos test in ``tests/runtime/test_service.py`` holds the server
to exactly that.

:class:`ServiceClient` is the deliberately *synchronous* counterpart used by
the ``repro-campaign submit|status|tail|cancel`` CLI and by tests: plain
``socket`` I/O, no event loop, so client-side code stays trivially steppable.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import socket
from pathlib import Path
from typing import Dict, Iterator, Optional
from urllib.parse import parse_qs, unquote

from repro.runtime.service import CampaignService, CampaignSpec, ServiceError

#: Largest accepted request body (submissions are tiny; anything bigger is
#: a client bug or abuse).
MAX_BODY_BYTES = 1 << 20

#: Largest accepted request line / header line.
MAX_LINE_BYTES = 16 * 1024

_STATUS_TEXT = {
    200: "OK",
    201: "Created",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    500: "Internal Server Error",
}


class ProtocolError(Exception):
    """A malformed or oversized request; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class _Request:
    """One parsed request: method, path segments, query, JSON body."""

    def __init__(self, method: str, path: str, query: Dict[str, list], body: bytes) -> None:
        self.method = method
        self.path = path
        self.query = query
        self.body = body
        self.segments = [unquote(part) for part in path.strip("/").split("/") if part]

    def json(self) -> dict:
        """The request body parsed as a JSON object."""
        if not self.body:
            raise ProtocolError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as error:
            raise ProtocolError(400, f"request body is not valid JSON: {error}")
        if not isinstance(payload, dict):
            raise ProtocolError(400, "request body must be a JSON object")
        return payload


async def _read_request(reader: "asyncio.StreamReader") -> Optional[_Request]:
    """Parse one HTTP/1.1 request off the stream (``None`` on immediate EOF)."""
    line = await reader.readline()
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(400, "request line too long")
    parts = line.decode("latin-1").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(400, "header line too long")
        if line in (b"\r\n", b"\n", b""):
            break
        name, separator, value = line.decode("latin-1").partition(":")
        if not separator:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        raise ProtocolError(400, "malformed Content-Length")
    if length > MAX_BODY_BYTES:
        raise ProtocolError(413, f"request body over {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length > 0 else b""
    path, _, query_text = target.partition("?")
    return _Request(method, path, parse_qs(query_text), body)


def _response(status: int, payload: object, *, content_type: str = "application/json") -> bytes:
    """One complete non-streaming response with Content-Length."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf8")
    head = (
        f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _stream_head(content_type: str) -> bytes:
    """Response head of a connection-delimited streaming response."""
    return (
        "HTTP/1.1 200 OK\r\n"
        f"Content-Type: {content_type}\r\n"
        "Cache-Control: no-store\r\n"
        "Connection: close\r\n"
        "\r\n"
    ).encode("latin-1")


class ServiceAPI:
    """The campaign service's Unix-socket HTTP server."""

    def __init__(self, service: CampaignService, socket_path) -> None:
        self.service = service
        self.socket_path = Path(socket_path)
        self._server: Optional["asyncio.AbstractServer"] = None

    async def start(self) -> None:
        """Bind and start accepting connections (replaces a stale socket file)."""
        self.socket_path.parent.mkdir(parents=True, exist_ok=True)
        with contextlib.suppress(OSError):
            self.socket_path.unlink()
        self._server = await asyncio.start_unix_server(
            self._handle_connection, path=str(self.socket_path)
        )

    async def serve_forever(self) -> None:
        """Serve until cancelled."""
        await self._server.serve_forever()

    async def close(self) -> None:
        """Stop accepting connections and remove the socket file."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        with contextlib.suppress(OSError):
            self.socket_path.unlink()

    # ------------------------------------------------------------- connections
    async def _handle_connection(self, reader, writer) -> None:
        """Serve one connection: parse, dispatch, always clean up.

        A client that vanishes mid-request or mid-stream must never take the
        daemon with it: connection-level errors are swallowed here (the
        stream tail simply ends) and the transport is closed in ``finally``,
        so no file descriptor outlives its connection.
        """
        try:
            try:
                request = await _read_request(reader)
                if request is None:
                    return
                await self._dispatch(request, writer)
            except ProtocolError as error:
                writer.write(_response(error.status, {"error": str(error)}))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError, BrokenPipeError):
            pass
        except Exception as error:  # one bad handler must not kill the daemon
            with contextlib.suppress(Exception):
                writer.write(_response(500, {"error": str(error)}))
                await writer.drain()
        finally:
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: _Request, writer) -> None:
        """Route one parsed request to the service."""
        segments = request.segments
        if request.method == "GET" and segments == ["health"]:
            writer.write(_response(200, {"status": "ok", **self.service.describe()}))
            await writer.drain()
            return
        if segments[:1] != ["campaigns"]:
            raise ProtocolError(404, f"no such path {request.path!r}")
        if request.method == "POST" and len(segments) == 1:
            await self._submit(request, writer)
            return
        if request.method == "GET" and len(segments) == 1:
            campaigns = [
                self.service.campaign_status(self.service.campaigns[campaign_id])
                for campaign_id in sorted(self.service.campaigns)
            ]
            writer.write(_response(200, {"campaigns": campaigns}))
            await writer.drain()
            return
        if len(segments) < 2:
            raise ProtocolError(405, f"{request.method} not allowed on {request.path!r}")
        try:
            campaign = self.service.resolve(segments[1])
        except ServiceError as error:
            raise ProtocolError(404, str(error))
        if request.method == "GET" and len(segments) == 2:
            writer.write(_response(200, self.service.campaign_status(campaign)))
            await writer.drain()
            return
        if request.method == "GET" and segments[2:] == ["tail"]:
            await self._tail(request, campaign, writer)
            return
        if request.method == "DELETE" and len(segments) == 2:
            try:
                cancelled = await self.service.cancel(campaign.id)
            except ServiceError as error:
                raise ProtocolError(409, str(error))
            writer.write(_response(200, self.service.campaign_status(cancelled)))
            await writer.drain()
            return
        raise ProtocolError(405, f"{request.method} not allowed on {request.path!r}")

    async def _submit(self, request: _Request, writer) -> None:
        """POST /campaigns — submit one campaign."""
        try:
            spec = CampaignSpec.from_dict(request.json())
            campaign = await self.service.submit(spec)
        except ServiceError as error:
            status = 409 if "already in flight" in str(error) else 400
            writer.write(_response(status, {"error": str(error)}))
            await writer.drain()
            return
        writer.write(_response(201, self.service.campaign_status(campaign)))
        await writer.drain()

    async def _tail(self, request: _Request, campaign, writer) -> None:
        """GET /campaigns/<id>/tail — stream progress until terminal state."""
        fmt = (request.query.get("format") or ["ndjson"])[0]
        if fmt not in ("ndjson", "sse"):
            raise ProtocolError(400, f"unknown tail format {fmt!r} (ndjson or sse)")
        writer.write(_stream_head("text/event-stream" if fmt == "sse" else "application/x-ndjson"))
        await writer.drain()
        async for event in self.service.stream(campaign):
            data = json.dumps(event, sort_keys=True)
            if fmt == "sse":
                writer.write(f"data: {data}\n\n".encode("utf8"))
            else:
                writer.write((data + "\n").encode("utf8"))
            # drain() is where a vanished client surfaces (ConnectionError),
            # unwinding this handler without touching the campaign itself.
            await writer.drain()


# --------------------------------------------------------------------- client
class ServiceClientError(Exception):
    """The daemon refused a request (carries the HTTP status and detail)."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """Synchronous Unix-socket HTTP client for the campaign service.

    One connection per request (the server closes after each response), so
    the client object is stateless and reusable.  Used by the thin
    ``repro-campaign submit|status|tail|cancel`` commands and by tests.
    """

    def __init__(self, socket_path, timeout: float = 60.0) -> None:
        self.socket_path = str(socket_path)
        self.timeout = float(timeout)

    # -------------------------------------------------------------- transport
    def _connect(self) -> socket.socket:
        """A connected Unix-domain socket."""
        connection = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        connection.settimeout(self.timeout)
        try:
            connection.connect(self.socket_path)
        except OSError as error:
            connection.close()
            raise ServiceClientError(
                0, f"cannot reach the campaign service at {self.socket_path}: {error}"
            )
        return connection

    @staticmethod
    def _request_bytes(method: str, path: str, payload: Optional[dict]) -> bytes:
        """Serialize one request."""
        body = b""
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf8")
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            "Host: localhost\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        return head.encode("latin-1") + body

    @staticmethod
    def _read_head(handle) -> int:
        """Consume the status line + headers; return the status code."""
        status_line = handle.readline()
        if not status_line:
            raise ServiceClientError(0, "empty response from the campaign service")
        parts = status_line.decode("latin-1").split()
        if len(parts) < 2 or not parts[1].isdigit():
            raise ServiceClientError(0, f"malformed status line {status_line!r}")
        while True:
            line = handle.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return int(parts[1])

    def request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        """One request/response round trip; raises on non-2xx."""
        with contextlib.closing(self._connect()) as connection:
            connection.sendall(self._request_bytes(method, path, payload))
            with connection.makefile("rb") as handle:
                status = self._read_head(handle)
                body = handle.read()
        try:
            decoded = json.loads(body) if body.strip() else {}
        except json.JSONDecodeError:
            raise ServiceClientError(status, f"undecodable response body {body[:200]!r}")
        if status >= 400:
            message = decoded.get("error") if isinstance(decoded, dict) else None
            raise ServiceClientError(status, message or f"HTTP {status}")
        return decoded

    def stream(self, path: str) -> Iterator[dict]:
        """Yield NDJSON events from a streaming endpoint until the server closes."""
        with contextlib.closing(self._connect()) as connection:
            connection.sendall(self._request_bytes("GET", path, None))
            with connection.makefile("rb") as handle:
                status = self._read_head(handle)
                if status >= 400:
                    body = handle.read()
                    try:
                        decoded = json.loads(body) if body.strip() else {}
                    except json.JSONDecodeError:
                        decoded = {}
                    message = decoded.get("error") if isinstance(decoded, dict) else None
                    raise ServiceClientError(status, message or f"HTTP {status}")
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

    # ------------------------------------------------------------ convenience
    def health(self) -> dict:
        """GET /health."""
        return self.request("GET", "/health")

    def submit(self, spec: dict) -> dict:
        """POST /campaigns with a submission payload."""
        return self.request("POST", "/campaigns", spec)

    def campaigns(self) -> list:
        """GET /campaigns — every campaign's status."""
        return self.request("GET", "/campaigns").get("campaigns", [])

    def status(self, target: str) -> dict:
        """GET /campaigns/<target> (id or label)."""
        return self.request("GET", f"/campaigns/{target}")

    def tail(self, target: str) -> Iterator[dict]:
        """GET /campaigns/<target>/tail — NDJSON event iterator."""
        return self.stream(f"/campaigns/{target}/tail")

    def cancel(self, target: str) -> dict:
        """DELETE /campaigns/<target>."""
        return self.request("DELETE", f"/campaigns/{target}")


def wait_for_socket(socket_path, timeout: float = 30.0, interval: float = 0.05) -> None:
    """Block until the daemon answers /health (client-side startup barrier).

    Synchronous on purpose: callers are CLI processes and test fixtures that
    just launched ``repro-campaign serve`` and need a readiness check.
    """
    import time

    client = ServiceClient(socket_path, timeout=max(timeout, 1.0))
    deadline = time.monotonic() + timeout
    while True:
        if os.path.exists(str(socket_path)):
            try:
                client.health()
                return
            except (ServiceClientError, OSError):
                pass
        if time.monotonic() > deadline:
            raise TimeoutError(f"campaign service socket {socket_path} never became ready")
        time.sleep(interval)


__all__ = [
    "MAX_BODY_BYTES",
    "ProtocolError",
    "ServiceAPI",
    "ServiceClient",
    "ServiceClientError",
    "wait_for_socket",
]
