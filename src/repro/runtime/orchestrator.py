"""Shard orchestration: launch, watch, retry, and merge multi-machine shards.

PR 3 built the shard *wire protocol* — ``--shard k/n`` journals plus
``--merge-only`` folding — but left a human as the scheduler: someone had to
start every shard, notice when one died, rerun it, and merge.  This module is
that missing layer.  :class:`ShardOrchestrator` drives a whole sharded
campaign from one process:

* each shard runs as a ``repro-campaign <id> --shard k/n`` attempt launched
  through an :class:`~repro.runtime.backends.ExecutionBackend` — a local
  subprocess by default, a remote host over SSH, or a Slurm job — with the
  :class:`~repro.runtime.scheduler.BackendScheduler` assigning attempts to
  backends by declared slot capacity and queueing shards when every backend
  is saturated;
* the orchestrator **tails the shard journal files** (they are the single
  source of truth for progress — the same property that makes them the
  multi-machine wire format, and the only thing backends must share: a
  filesystem) and reports live per-shard cell counts;
* a shard whose attempt exits non-zero, stalls (no journal progress for
  ``stall_timeout`` seconds), or is killed is **retried with ``--resume``**
  up to ``max_retries`` times — resuming from its journal, never restarting
  the completed cells, and **failing over to a different backend** than the
  one that just failed whenever more than one backend is configured;
* when every shard has succeeded, the orchestrator runs
  :meth:`~repro.runtime.runner.CampaignRunner.merge_shards`, producing a
  payload **byte-identical** to a single-machine run whatever the backend
  mix;
* a structured :class:`OrchestratorReport` (per-shard attempts, durations,
  retry reasons, and which backend ran each attempt) is written into the
  journal directory for post-mortems.

For clusters the orchestrator does not manage itself,
:func:`~repro.runtime.backends.render_slurm_script` and
:func:`~repro.runtime.backends.render_k8s_manifest` (re-exported here) emit
ready-to-submit Slurm array-job / Kubernetes indexed-Job templates whose
array tasks run exactly the same ``--shard k/n --resume`` commands — built by
the same :func:`~repro.runtime.backends.shard_argv` the orchestrator launches
— so the scheduler's own requeue machinery resumes from the journals too.

The orchestrator deliberately reuses :class:`~repro.runtime.sharding.ShardSpec`
and ``merge_shards`` — it introduces no second partitioning scheme, only a
driver for the existing one.
"""

from __future__ import annotations

import asyncio
import os
import shlex
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.runtime.backends import (
    ExecutionBackend,
    LocalProcessBackend,
    ShardLaunch,  # noqa: F401  (re-exported for backend implementers)
    render_k8s_manifest,  # noqa: F401  (re-exported; CLI and tests import from here)
    render_slurm_script,  # noqa: F401  (re-exported; CLI and tests import from here)
    shard_argv,
)
from repro.runtime.journal import JournalProgress
from repro.runtime.runner import CampaignError, CampaignRunner
from repro.runtime.scheduler import BackendScheduler
from repro.runtime.sharding import ShardSpec
from repro.utils.serialization import save_json


class OrchestratorError(CampaignError):
    """A sharded campaign could not be completed (a shard exhausted its retries).

    Carries the :class:`OrchestratorReport` (already written to the journal
    directory) as ``report``, so callers can still inspect which shard failed,
    why, and what every attempt looked like.
    """

    def __init__(self, message: str, report: Optional["OrchestratorReport"] = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class ShardAttempt:
    """One backend attempt at running a shard.

    ``reason`` is ``None`` for a successful attempt; otherwise it names why
    the attempt failed ("exit status 1: ...", "stalled: ...", an injected
    kill).  ``resumed`` records whether ``--resume`` was passed, i.e. whether
    the attempt continued from the shard journal instead of restarting.
    ``backend`` names the execution backend that ran the attempt — after a
    backend failover, consecutive attempts carry different names.
    """

    number: int
    duration_seconds: float
    returncode: Optional[int]
    cells_completed: int
    resumed: bool
    reason: Optional[str]
    backend: Optional[str] = None

    def as_dict(self) -> dict:
        """JSON-serializable form for the orchestrator report."""
        return {
            "number": self.number,
            "duration_seconds": round(self.duration_seconds, 3),
            "returncode": self.returncode,
            "cells_completed": self.cells_completed,
            "resumed": self.resumed,
            "reason": self.reason,
            "backend": self.backend,
        }


@dataclass
class ShardOutcome:
    """Everything that happened to one shard: its attempts, in order."""

    shard: ShardSpec
    assigned_cells: int
    attempts: List[ShardAttempt] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether the shard's final attempt completed cleanly."""
        return bool(self.attempts) and self.attempts[-1].reason is None

    @property
    def retry_count(self) -> int:
        """How many times the shard was retried (attempts beyond the first)."""
        return max(0, len(self.attempts) - 1)

    def as_dict(self) -> dict:
        """JSON-serializable form for the orchestrator report."""
        return {
            "shard": self.shard.describe(),
            "assigned_cells": self.assigned_cells,
            "succeeded": self.succeeded,
            "attempts": [attempt.as_dict() for attempt in self.attempts],
        }


@dataclass
class OrchestratorReport:
    """Structured post-mortem of one orchestrated campaign.

    Written as ``<label>.orchestrator.json`` into the journal directory
    whether the campaign merged or failed, so "why did shard 3 take four
    attempts last night" — and "which backend did each attempt land on" —
    have answers that outlive the terminal scrollback.  The merged result
    object (when ``merged``) is on :attr:`result`; it is not serialized into
    the report — the campaign's own ``--output`` files hold the payload.
    """

    experiment_id: str
    shard_count: int
    cell_count: int
    max_retries: int
    outcomes: List[ShardOutcome]
    backends: List[str] = field(default_factory=list)
    merged: bool = False
    duration_seconds: float = 0.0
    result: Optional[object] = None
    path: Optional[Path] = None

    @property
    def failed_shards(self) -> List[ShardSpec]:
        """The shards whose retries were exhausted, in shard order."""
        return [outcome.shard for outcome in self.outcomes if not outcome.succeeded]

    def as_dict(self) -> dict:
        """JSON-serializable form (excludes the in-memory merged result)."""
        return {
            "experiment_id": self.experiment_id,
            "shard_count": self.shard_count,
            "cell_count": self.cell_count,
            "max_retries": self.max_retries,
            "backends": list(self.backends),
            "merged": self.merged,
            "duration_seconds": round(self.duration_seconds, 3),
            "shards": [outcome.as_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        """Plain-text summary: one line per shard, attempts and outcome."""
        lines = [
            f"{self.experiment_id}: {self.shard_count} shard(s) over "
            f"{self.cell_count} cells in {self.duration_seconds:.1f}s — "
            + ("merged" if self.merged else "NOT merged")
        ]
        if self.backends:
            lines.append(f"  backends: {', '.join(self.backends)}")
        for outcome in self.outcomes:
            status = "ok" if outcome.succeeded else "FAILED"
            detail = ""
            reasons = [a.reason for a in outcome.attempts if a.reason is not None]
            if reasons:
                detail = f" (failed attempts: {'; '.join(reasons)})"
            via = sorted({a.backend for a in outcome.attempts if a.backend})
            via_text = f" via {', '.join(via)}" if via else ""
            lines.append(
                f"  shard {outcome.shard.describe()}: {status} after "
                f"{len(outcome.attempts)} attempt(s), "
                f"{outcome.assigned_cells} cell(s){via_text}{detail}"
            )
        return "\n".join(lines)


#: Signature of the testing hook that overrides shard attempt commands:
#: ``(spec, attempt_number, resume) -> argv``.
CommandFactory = Callable[[ShardSpec, int, bool], Sequence[str]]


class ShardOrchestrator:
    """Asyncio driver for an ``n``-way sharded campaign over pluggable backends.

    Parameters
    ----------
    experiment_id:
        The registered artifact to run (must decompose into >1 cell).
    shard_count:
        How many ``--shard k/n`` attempts to drive (concurrency is bounded
        only by the backends' declared slots).
    runner:
        A :class:`~repro.runtime.runner.CampaignRunner` with ``journal_dir``
        set to the shared journal store.  The orchestrator uses it to build
        the plan **in the parent process** — which trains or loads any missing
        pretrained baselines *before* the shards launch, so concurrent
        attempts never race to train the same baseline — and to
        ``merge_shards`` at the end.
    backends:
        The :class:`~repro.runtime.backends.ExecutionBackend` roster shard
        attempts are scheduled onto.  Defaults to one unbounded
        :class:`~repro.runtime.backends.LocalProcessBackend` — exactly the
        pre-backend behaviour of running every shard as a concurrent local
        subprocess.
    plan:
        Optional pre-built :class:`~repro.runtime.cells.CampaignPlan`
        (testing hook; defaults to ``runner.plan(experiment_id)``).
    shard_args:
        Extra CLI arguments forwarded verbatim to every shard attempt
        (``--scale``, ``--seed``, ``--cache-dir``, ``--workers``, ...).
    max_retries:
        How many times a failed or stalled shard is retried (with
        ``--resume``) beyond its first attempt.
    stall_timeout:
        Kill and retry a shard whose journal shows no new cell for this many
        seconds (``None`` disables stall detection).
    poll_interval:
        How often (seconds) shard journals are polled for progress.
    inject_kill_shard:
        Chaos-testing hook: kill this shard's *first* attempt as soon as its
        journal holds at least one cell.  CI uses it to prove the
        kill → retry → ``--resume`` → byte-identical-merge path (and, with
        multiple backends, the backend-failover path) on a real artifact.
    command_factory:
        Testing hook replacing the default ``repro-campaign <id> --shard k/n``
        attempt command.
    on_event:
        Callback receiving human-readable progress lines (``None`` = silent).
    scheduler:
        An injected scheduler replacing the orchestrator's own
        :class:`~repro.runtime.scheduler.BackendScheduler`.  The campaign
        service passes a per-campaign view of its *shared* dispatcher here,
        so many concurrent orchestrations draw from one roster under one
        priority/quota policy; the roster is then read off
        ``scheduler.backends`` and ``backends`` must not also be given.
    prepare_backends:
        Whether :meth:`run_async` runs ``backend.prepare`` before launching
        (default).  The campaign service prepares its shared roster once at
        startup and passes ``False``, so every submitted campaign does not
        re-run SSH preflights or re-create scratch directories.
    """

    def __init__(
        self,
        experiment_id: str,
        shard_count: int,
        runner: CampaignRunner,
        *,
        backends: Optional[Sequence[ExecutionBackend]] = None,
        plan=None,
        shard_args: Sequence[str] = (),
        max_retries: int = 2,
        stall_timeout: Optional[float] = None,
        poll_interval: float = 0.5,
        inject_kill_shard: Optional[int] = None,
        command_factory: Optional[CommandFactory] = None,
        on_event: Optional[Callable[[str], None]] = None,
        python_executable: Optional[str] = None,
        scheduler: Optional[BackendScheduler] = None,
        prepare_backends: bool = True,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard count must be >= 1, got {shard_count}")
        if max_retries < 0:
            raise ValueError(f"max retries must be >= 0, got {max_retries}")
        if poll_interval <= 0:
            raise ValueError(f"poll interval must be > 0, got {poll_interval}")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(f"stall timeout must be > 0, got {stall_timeout}")
        if runner.journal_dir is None:
            raise CampaignError(
                "orchestration requires a journal directory: construct the "
                "CampaignRunner with journal_dir (CLI: --journal-dir or --output)"
            )
        if scheduler is not None and backends is not None:
            raise ValueError(
                "give either backends or an injected scheduler, not both: an "
                "injected scheduler brings its own roster (scheduler.backends)"
            )
        self.experiment_id = experiment_id
        self.shard_count = int(shard_count)
        self.runner = runner
        self.journal_dir = runner.journal_dir
        if scheduler is not None:
            self.backends: List[ExecutionBackend] = list(scheduler.backends)
        else:
            self.backends = list(backends or [LocalProcessBackend()])
        self._plan = plan
        self.shard_args = list(shard_args)
        self.max_retries = int(max_retries)
        self.stall_timeout = stall_timeout
        self.poll_interval = float(poll_interval)
        self.inject_kill_shard = inject_kill_shard
        self.command_factory = command_factory
        self.on_event = on_event
        self.python_executable = python_executable or sys.executable
        self.scheduler = scheduler if scheduler is not None else BackendScheduler(self.backends)
        self.prepare_backends = bool(prepare_backends)

    # ------------------------------------------------------------------- plan
    @property
    def plan(self):
        """The campaign plan, built once in the parent process.

        Building the plan trains (or cache-loads) every pretrained baseline
        *before* any shard attempt starts — the attempts then find a warm
        cache instead of racing each other to train the same policy.
        """
        if self._plan is None:
            self._plan = self.runner.plan(self.experiment_id)
        return self._plan

    def shard_specs(self) -> List[ShardSpec]:
        """The :class:`ShardSpec` for every shard of this orchestration."""
        return [ShardSpec(index, self.shard_count) for index in range(1, self.shard_count + 1)]

    # --------------------------------------------------------------- commands
    def shard_command(
        self,
        spec: ShardSpec,
        attempt_number: int,
        resume: bool,
        backend: Optional[ExecutionBackend] = None,
    ) -> List[str]:
        """The argv for one shard attempt.

        The default command is the public CLI itself — ``repro-campaign
        <id> --shard k/n --journal-dir ...``, built by the shared
        :func:`~repro.runtime.backends.shard_argv` — so an orchestrated shard
        is bit-for-bit the same run a human (or a rendered Slurm/Kubernetes
        template) would launch.  The program prefix defaults to this
        process's own interpreter; a backend that executes on a different
        machine overrides it via
        :meth:`~repro.runtime.backends.ExecutionBackend.shard_program` (the
        local ``sys.executable`` path would not exist over SSH).
        """
        if self.command_factory is not None:
            return list(self.command_factory(spec, attempt_number, resume))
        program: Sequence[str] = (self.python_executable, "-m", "repro.runtime.cli")
        shard_args = list(self.shard_args)
        if backend is not None:
            override = backend.shard_program()
            if override:
                program = override
            if backend.workers is not None:
                # Appended after the forwarded args so it wins over the
                # campaign-wide --workers (argparse keeps the last occurrence).
                shard_args += ["--workers", str(backend.workers)]
        return shard_argv(
            self.experiment_id,
            spec.describe(),
            self.journal_dir,
            shard_args=shard_args,
            resume=resume,
            program=program,
        )

    def render_dry_run(self) -> str:
        """The resolved shard→backend assignment and exact per-shard commands.

        Launches nothing and builds no plan (so no baseline training) —
        the cheapest way to eyeball ``--backend`` spec parsing and the
        scheduler's first-attempt placement before committing a cluster.
        """
        assignments = self.scheduler.plan_assignments(self.shard_count)
        total = self.scheduler.total_slots
        lines = [
            f"{self.experiment_id}: {self.shard_count} shard(s) over backends "
            f"{self.scheduler.describe()}"
        ]
        for spec, backend in zip(self.shard_specs(), assignments):
            command = self.shard_command(spec, 1, False, backend)
            lines.append(
                f"  shard {spec.describe()} -> {backend.name}: "
                + " ".join(shlex.quote(part) for part in command)
            )
        if total is not None and self.shard_count > total:
            lines.append(
                f"  note: {self.shard_count} shard(s) over {total} total slot(s) — "
                f"{self.shard_count - total} shard(s) queue until a slot frees; "
                "assignments beyond the first wave assume shards finish in "
                "launch order"
            )
        lines.append("dry run: nothing launched")
        return "\n".join(lines)

    def _subprocess_env(self) -> dict:
        """Environment for shard attempts (repro importable without install)."""
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
        return env

    def _emit(self, message: str) -> None:
        """Send one progress line to the ``on_event`` callback, if any."""
        if self.on_event is not None:
            self.on_event(message)

    # -------------------------------------------------------------- execution
    def run(self) -> OrchestratorReport:
        """Run the whole orchestration synchronously (``asyncio.run`` wrapper)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> OrchestratorReport:
        """Launch every shard, retry failures, merge, and write the report.

        Returns the :class:`OrchestratorReport` with ``merged=True`` and the
        merged result on ``report.result``.  Raises :class:`OrchestratorError`
        (carrying the report) when any shard exhausts its retries — the report
        is written to the journal directory in both cases.
        """
        # Backend preparation (scratch dirs, the SSH connection preflight)
        # happens here rather than in __init__ so a --dry-run stays offline
        # and a dead host is reported as an orchestration failure.  A shared
        # roster (injected scheduler) is prepared once by its owner instead.
        if self.prepare_backends:
            for backend in self.backends:
                backend.prepare(self.journal_dir)
        plan = self.plan
        if plan.cell_count <= 1:
            raise OrchestratorError(
                f"{self.experiment_id!r} is a single-cell plan and cannot be "
                "sharded or orchestrated; run it directly instead"
            )
        if self.shard_count > plan.cell_count:
            self._emit(
                f"note: {self.shard_count} shards over {plan.cell_count} cells — "
                f"{self.shard_count - plan.cell_count} shard(s) will own no cells"
            )
        self._emit(f"backends: {self.scheduler.describe()}")
        started = time.monotonic()
        outcomes = await asyncio.gather(
            *(self._drive_shard(spec) for spec in self.shard_specs())
        )
        report = OrchestratorReport(
            experiment_id=self.experiment_id,
            shard_count=self.shard_count,
            cell_count=plan.cell_count,
            max_retries=self.max_retries,
            outcomes=list(outcomes),
            backends=[backend.describe() for backend in self.backends],
        )
        failed = report.failed_shards
        merge_error: Optional[Exception] = None
        if not failed:
            try:
                report.result = self.runner.merge_shards(plan, name=self.experiment_id)
                report.merged = True
            except Exception as error:
                # The report (the post-mortem) must land even when the merge
                # finds e.g. stale foreign shard journals in the shared store.
                merge_error = error
        report.duration_seconds = time.monotonic() - started
        report.path = self.journal_dir / f"{self.experiment_id}.orchestrator.json"
        save_json(report.path, report.as_dict())
        self._emit(f"report written to {report.path}")
        if merge_error is not None:
            raise OrchestratorError(
                f"every shard of {self.experiment_id} succeeded but merging "
                f"failed: {merge_error}",
                report=report,
            ) from merge_error
        if failed:
            names = ", ".join(spec.describe() for spec in failed)
            reasons = "; ".join(
                outcome.attempts[-1].reason or "unknown"
                for outcome in report.outcomes
                if not outcome.succeeded
            )
            raise OrchestratorError(
                f"shard(s) {names} of {self.experiment_id} failed after "
                f"{self.max_retries + 1} attempt(s): {reasons}",
                report=report,
            )
        return report

    async def _drive_shard(self, spec: ShardSpec) -> ShardOutcome:
        """Run one shard to success or retry exhaustion, failing over backends."""
        journal_path = spec.journal_path(self.journal_dir, self.experiment_id)
        # One incremental prober per *shard*, shared by all of its attempts:
        # a retry's polls then parse only the bytes its predecessor had not
        # seen, instead of re-reading the whole journal from offset zero on
        # every attempt (O(new bytes) total, however many retries happen).
        progress = JournalProgress(journal_path)
        outcome = ShardOutcome(
            shard=spec,
            assigned_cells=len(spec.cell_indices(self.plan.cell_count)),
        )
        total = self.max_retries + 1
        failed_backend: Optional[ExecutionBackend] = None
        for number in range(1, total + 1):
            # First attempts resume too when a journal is already on disk —
            # e.g. a previous orchestrate run that died; completed cells are
            # never re-executed.
            resume = number > 1 or journal_path.exists()
            if not self.scheduler.has_free_slot(avoid=failed_backend):
                self._emit(
                    f"shard {spec.describe()}: queued — waiting for a free "
                    "backend slot"
                )
            backend = await self.scheduler.acquire(avoid=failed_backend)
            try:
                attempt = await self._attempt(spec, number, progress, resume, backend)
            finally:
                await self.scheduler.release(backend)
            outcome.attempts.append(attempt)
            if attempt.reason is None:
                self._emit(
                    f"shard {spec.describe()}: done on {backend.name} — "
                    f"{attempt.cells_completed}/{outcome.assigned_cells} cells "
                    f"journaled in {attempt.duration_seconds:.1f}s "
                    f"(attempt {number}/{total})"
                )
                break
            failed_backend = backend
            if number < total:
                failover = " on a different backend" if len(self.backends) > 1 else ""
                self._emit(
                    f"shard {spec.describe()}: attempt {number} on {backend.name} "
                    f"failed ({attempt.reason}); retrying with --resume{failover} "
                    f"(attempt {number + 1}/{total})"
                )
            else:
                self._emit(
                    f"shard {spec.describe()}: FAILED after {total} attempt(s) "
                    f"— {attempt.reason}"
                )
        return outcome

    async def _attempt(
        self,
        spec: ShardSpec,
        number: int,
        progress: JournalProgress,
        resume: bool,
        backend: ExecutionBackend,
    ) -> ShardAttempt:
        """One attempt: launch on ``backend``, tail the journal, decide the outcome.

        ``progress`` is the shard's long-lived :class:`JournalProgress`
        prober — owned by :meth:`_drive_shard` and shared across attempts,
        so repeated polling costs O(new bytes), not O(file size) per poll.
        """
        command = self.shard_command(spec, number, resume, backend)
        self._emit(
            f"shard {spec.describe()}: attempt {number} starting on {backend.name} — "
            + " ".join(shlex.quote(part) for part in command)
        )
        started = time.monotonic()
        try:
            launch = await backend.launch(command, env=self._subprocess_env())
        except Exception as error:
            return ShardAttempt(
                number=number,
                duration_seconds=time.monotonic() - started,
                returncode=None,
                cells_completed=progress.poll(),
                resumed=resume,
                reason=f"backend {backend.name} failed to launch: {error}",
                backend=backend.name,
            )
        wait_task = asyncio.ensure_future(launch.wait())
        kill_reason: Optional[str] = None
        tracking_error: Optional[Exception] = None
        returncode: Optional[int] = None
        stderr_text = ""
        cells = progress.poll()
        last_change = time.monotonic()
        try:
            try:
                while True:
                    done, _ = await asyncio.wait({wait_task}, timeout=self.poll_interval)
                    now = time.monotonic()
                    current = progress.poll()
                    if current != cells:
                        cells = current
                        last_change = now
                        self._emit(
                            f"shard {spec.describe()}: {cells} cell(s) journaled "
                            f"(attempt {number} on {backend.name})"
                        )
                    if wait_task in done:
                        break
                    if kill_reason is None:
                        if (
                            self.inject_kill_shard == spec.index
                            and number == 1
                            and cells >= 1
                        ):
                            kill_reason = (
                                "injected kill (--inject-kill-shard chaos hook, "
                                "first attempt)"
                            )
                        elif (
                            self.stall_timeout is not None
                            and now - last_change > self.stall_timeout
                        ):
                            kill_reason = (
                                f"stalled: no journal progress for more than "
                                f"{self.stall_timeout:.0f}s"
                            )
                        if kill_reason is not None:
                            self._emit(
                                f"shard {spec.describe()}: killing attempt {number} — "
                                f"{kill_reason}"
                            )
                            launch.kill()
                returncode = wait_task.result()
                stderr_text = await launch.stderr()
            except asyncio.CancelledError:
                raise
            except Exception as error:
                # A backend that fails while *tracking* the attempt (squeue
                # binary missing mid-poll, transient OSError, ...) is a
                # failed attempt that should retry/fail over — never a crash
                # of the whole orchestration with no report.
                tracking_error = error
        finally:
            # Never orphan a shard: on cancellation (Ctrl+C) or any monitor
            # error, the attempt dies with the orchestrator.  close() awaits
            # (rather than cancels) the backend's reaping, so killed children
            # and their pipes are collected cleanly.
            if not launch.finished:
                launch.kill()
            await asyncio.gather(wait_task, return_exceptions=True)
            await launch.close()
        duration = time.monotonic() - started
        cells = progress.poll()
        if tracking_error is not None:
            reason: Optional[str] = (
                f"backend {backend.name} failed while tracking the attempt: "
                f"{tracking_error}"
            )
        elif returncode == 0 and kill_reason is None:
            if self.inject_kill_shard == spec.index and number == 1:
                # The shard finished between polls, before the kill could
                # land.  Treat the attempt as failed anyway so the chaos hook
                # stays deterministic: the retry resumes a complete journal,
                # executes nothing, and exits 0.
                kill_reason = (
                    "injected kill (--inject-kill-shard chaos hook, first "
                    "attempt; shard finished before the kill landed, attempt "
                    "treated as failed)"
                )
                reason = kill_reason
            else:
                reason = None
        elif kill_reason is not None:
            reason = kill_reason
        else:
            tail = [line for line in stderr_text.strip().splitlines() if line.strip()]
            reason = f"exit status {returncode}"
            if tail:
                reason += f": {tail[-1].strip()}"
        return ShardAttempt(
            number=number,
            duration_seconds=duration,
            returncode=returncode,
            cells_completed=cells,
            resumed=resume,
            reason=reason,
            backend=backend.name,
        )
