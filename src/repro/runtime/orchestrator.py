"""Shard orchestration: launch, watch, retry, and merge multi-machine shards.

PR 3 built the shard *wire protocol* — ``--shard k/n`` journals plus
``--merge-only`` folding — but left a human as the scheduler: someone had to
start every shard, notice when one died, rerun it, and merge.  This module is
that missing layer.  :class:`ShardOrchestrator` drives a whole sharded
campaign from one process:

* each shard runs as a ``repro-campaign <id> --shard k/n`` **subprocess**
  (``asyncio.create_subprocess_exec``), all shards concurrently;
* the orchestrator **tails the shard journal files** (they are the single
  source of truth for progress — the same property that makes them the
  multi-machine wire format) and reports live per-shard cell counts;
* a shard whose subprocess exits non-zero, stalls (no journal progress for
  ``stall_timeout`` seconds), or is killed is **retried with ``--resume``** up
  to ``max_retries`` times — resuming from its journal, never restarting the
  completed cells;
* when every shard has succeeded, the orchestrator runs
  :meth:`~repro.runtime.runner.CampaignRunner.merge_shards`, producing a
  payload **byte-identical** to a single-machine run;
* a structured :class:`OrchestratorReport` (per-shard attempts, durations,
  retry reasons) is written into the journal directory for post-mortems.

For real clusters the orchestrator does not pretend to be a scheduler:
:func:`render_slurm_script` and :func:`render_k8s_manifest` emit
ready-to-submit Slurm array-job / Kubernetes indexed-Job templates whose
array tasks run exactly the same ``--shard k/n --resume`` commands, so the
scheduler's own requeue machinery resumes from the journals too.

The orchestrator deliberately reuses :class:`~repro.runtime.sharding.ShardSpec`
and ``merge_shards`` — it introduces no second partitioning scheme, only a
driver for the existing one.
"""

from __future__ import annotations

import asyncio
import os
import shlex
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence

from repro.runtime.journal import JournalProgress
from repro.runtime.runner import CampaignError, CampaignRunner
from repro.runtime.sharding import ShardSpec
from repro.utils.serialization import save_json


class OrchestratorError(CampaignError):
    """A sharded campaign could not be completed (a shard exhausted its retries).

    Carries the :class:`OrchestratorReport` (already written to the journal
    directory) as ``report``, so callers can still inspect which shard failed,
    why, and what every attempt looked like.
    """

    def __init__(self, message: str, report: Optional["OrchestratorReport"] = None) -> None:
        super().__init__(message)
        self.report = report


@dataclass(frozen=True)
class ShardAttempt:
    """One subprocess attempt at running a shard.

    ``reason`` is ``None`` for a successful attempt; otherwise it names why
    the attempt failed ("exit status 1: ...", "stalled: ...", an injected
    kill).  ``resumed`` records whether ``--resume`` was passed, i.e. whether
    the attempt continued from the shard journal instead of restarting.
    """

    number: int
    duration_seconds: float
    returncode: Optional[int]
    cells_completed: int
    resumed: bool
    reason: Optional[str]

    def as_dict(self) -> dict:
        """JSON-serializable form for the orchestrator report."""
        return {
            "number": self.number,
            "duration_seconds": round(self.duration_seconds, 3),
            "returncode": self.returncode,
            "cells_completed": self.cells_completed,
            "resumed": self.resumed,
            "reason": self.reason,
        }


@dataclass
class ShardOutcome:
    """Everything that happened to one shard: its attempts, in order."""

    shard: ShardSpec
    assigned_cells: int
    attempts: List[ShardAttempt] = field(default_factory=list)

    @property
    def succeeded(self) -> bool:
        """Whether the shard's final attempt completed cleanly."""
        return bool(self.attempts) and self.attempts[-1].reason is None

    @property
    def retry_count(self) -> int:
        """How many times the shard was retried (attempts beyond the first)."""
        return max(0, len(self.attempts) - 1)

    def as_dict(self) -> dict:
        """JSON-serializable form for the orchestrator report."""
        return {
            "shard": self.shard.describe(),
            "assigned_cells": self.assigned_cells,
            "succeeded": self.succeeded,
            "attempts": [attempt.as_dict() for attempt in self.attempts],
        }


@dataclass
class OrchestratorReport:
    """Structured post-mortem of one orchestrated campaign.

    Written as ``<label>.orchestrator.json`` into the journal directory
    whether the campaign merged or failed, so "why did shard 3 take four
    attempts last night" has an answer that outlives the terminal scrollback.
    The merged result object (when ``merged``) is on :attr:`result`; it is
    not serialized into the report — the campaign's own ``--output`` files
    hold the payload.
    """

    experiment_id: str
    shard_count: int
    cell_count: int
    max_retries: int
    outcomes: List[ShardOutcome]
    merged: bool = False
    duration_seconds: float = 0.0
    result: Optional[object] = None
    path: Optional[Path] = None

    @property
    def failed_shards(self) -> List[ShardSpec]:
        """The shards whose retries were exhausted, in shard order."""
        return [outcome.shard for outcome in self.outcomes if not outcome.succeeded]

    def as_dict(self) -> dict:
        """JSON-serializable form (excludes the in-memory merged result)."""
        return {
            "experiment_id": self.experiment_id,
            "shard_count": self.shard_count,
            "cell_count": self.cell_count,
            "max_retries": self.max_retries,
            "merged": self.merged,
            "duration_seconds": round(self.duration_seconds, 3),
            "shards": [outcome.as_dict() for outcome in self.outcomes],
        }

    def render(self) -> str:
        """Plain-text summary: one line per shard, attempts and outcome."""
        lines = [
            f"{self.experiment_id}: {self.shard_count} shard(s) over "
            f"{self.cell_count} cells in {self.duration_seconds:.1f}s — "
            + ("merged" if self.merged else "NOT merged")
        ]
        for outcome in self.outcomes:
            status = "ok" if outcome.succeeded else "FAILED"
            detail = ""
            reasons = [a.reason for a in outcome.attempts if a.reason is not None]
            if reasons:
                detail = f" (failed attempts: {'; '.join(reasons)})"
            lines.append(
                f"  shard {outcome.shard.describe()}: {status} after "
                f"{len(outcome.attempts)} attempt(s), "
                f"{outcome.assigned_cells} cell(s){detail}"
            )
        return "\n".join(lines)


#: Signature of the testing hook that overrides shard subprocess commands:
#: ``(spec, attempt_number, resume) -> argv``.
CommandFactory = Callable[[ShardSpec, int, bool], Sequence[str]]


class ShardOrchestrator:
    """Asyncio driver for an ``n``-way sharded campaign on this machine.

    Parameters
    ----------
    experiment_id:
        The registered artifact to run (must decompose into >1 cell).
    shard_count:
        How many ``--shard k/n`` subprocesses to run (all concurrently).
    runner:
        A :class:`~repro.runtime.runner.CampaignRunner` with ``journal_dir``
        set to the shared journal store.  The orchestrator uses it to build
        the plan **in the parent process** — which trains or loads any missing
        pretrained baselines *before* the shards launch, so concurrent
        subprocesses never race to train the same baseline — and to
        ``merge_shards`` at the end.
    plan:
        Optional pre-built :class:`~repro.runtime.cells.CampaignPlan`
        (testing hook; defaults to ``runner.plan(experiment_id)``).
    shard_args:
        Extra CLI arguments forwarded verbatim to every shard subprocess
        (``--scale``, ``--seed``, ``--cache-dir``, ``--workers``, ...).
    max_retries:
        How many times a failed or stalled shard is retried (with
        ``--resume``) beyond its first attempt.
    stall_timeout:
        Kill and retry a shard whose journal shows no new cell for this many
        seconds (``None`` disables stall detection).
    poll_interval:
        How often (seconds) shard journals are polled for progress.
    inject_kill_shard:
        Chaos-testing hook: SIGKILL this shard's *first* attempt as soon as
        its journal holds at least one cell.  CI uses it to prove the
        kill → retry → ``--resume`` → byte-identical-merge path on a real
        artifact.
    command_factory:
        Testing hook replacing the default ``repro-campaign <id> --shard k/n``
        subprocess command.
    on_event:
        Callback receiving human-readable progress lines (``None`` = silent).
    """

    def __init__(
        self,
        experiment_id: str,
        shard_count: int,
        runner: CampaignRunner,
        *,
        plan=None,
        shard_args: Sequence[str] = (),
        max_retries: int = 2,
        stall_timeout: Optional[float] = None,
        poll_interval: float = 0.5,
        inject_kill_shard: Optional[int] = None,
        command_factory: Optional[CommandFactory] = None,
        on_event: Optional[Callable[[str], None]] = None,
        python_executable: Optional[str] = None,
    ) -> None:
        if shard_count < 1:
            raise ValueError(f"shard count must be >= 1, got {shard_count}")
        if max_retries < 0:
            raise ValueError(f"max retries must be >= 0, got {max_retries}")
        if poll_interval <= 0:
            raise ValueError(f"poll interval must be > 0, got {poll_interval}")
        if stall_timeout is not None and stall_timeout <= 0:
            raise ValueError(f"stall timeout must be > 0, got {stall_timeout}")
        if runner.journal_dir is None:
            raise CampaignError(
                "orchestration requires a journal directory: construct the "
                "CampaignRunner with journal_dir (CLI: --journal-dir or --output)"
            )
        self.experiment_id = experiment_id
        self.shard_count = int(shard_count)
        self.runner = runner
        self.journal_dir = runner.journal_dir
        self._plan = plan
        self.shard_args = list(shard_args)
        self.max_retries = int(max_retries)
        self.stall_timeout = stall_timeout
        self.poll_interval = float(poll_interval)
        self.inject_kill_shard = inject_kill_shard
        self.command_factory = command_factory
        self.on_event = on_event
        self.python_executable = python_executable or sys.executable

    # ------------------------------------------------------------------- plan
    @property
    def plan(self):
        """The campaign plan, built once in the parent process.

        Building the plan trains (or cache-loads) every pretrained baseline
        *before* any shard subprocess starts — the shards then find a warm
        cache instead of racing each other to train the same policy.
        """
        if self._plan is None:
            self._plan = self.runner.plan(self.experiment_id)
        return self._plan

    def shard_specs(self) -> List[ShardSpec]:
        """The :class:`ShardSpec` for every shard of this orchestration."""
        return [ShardSpec(index, self.shard_count) for index in range(1, self.shard_count + 1)]

    # --------------------------------------------------------------- commands
    def shard_command(self, spec: ShardSpec, attempt_number: int, resume: bool) -> List[str]:
        """The argv for one shard attempt's subprocess.

        The default command is the public CLI itself — ``repro-campaign
        <id> --shard k/n --journal-dir ...`` — so an orchestrated shard is
        bit-for-bit the same run a human (or Slurm/Kubernetes) would launch.
        """
        if self.command_factory is not None:
            return list(self.command_factory(spec, attempt_number, resume))
        command = [
            self.python_executable,
            "-m",
            "repro.runtime.cli",
            self.experiment_id,
            "--shard",
            spec.describe(),
            "--journal-dir",
            str(self.journal_dir),
            *self.shard_args,
        ]
        if resume:
            command.append("--resume")
        return command

    def _subprocess_env(self) -> dict:
        """Environment for shard subprocesses (repro importable without install)."""
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = src_root if not existing else src_root + os.pathsep + existing
        return env

    def _emit(self, message: str) -> None:
        """Send one progress line to the ``on_event`` callback, if any."""
        if self.on_event is not None:
            self.on_event(message)

    # -------------------------------------------------------------- execution
    def run(self) -> OrchestratorReport:
        """Run the whole orchestration synchronously (``asyncio.run`` wrapper)."""
        return asyncio.run(self.run_async())

    async def run_async(self) -> OrchestratorReport:
        """Launch every shard, retry failures, merge, and write the report.

        Returns the :class:`OrchestratorReport` with ``merged=True`` and the
        merged result on ``report.result``.  Raises :class:`OrchestratorError`
        (carrying the report) when any shard exhausts its retries — the report
        is written to the journal directory in both cases.
        """
        plan = self.plan
        if plan.cell_count <= 1:
            raise OrchestratorError(
                f"{self.experiment_id!r} is a single-cell plan and cannot be "
                "sharded or orchestrated; run it directly instead"
            )
        if self.shard_count > plan.cell_count:
            self._emit(
                f"note: {self.shard_count} shards over {plan.cell_count} cells — "
                f"{self.shard_count - plan.cell_count} shard(s) will own no cells"
            )
        started = time.monotonic()
        outcomes = await asyncio.gather(
            *(self._drive_shard(spec) for spec in self.shard_specs())
        )
        report = OrchestratorReport(
            experiment_id=self.experiment_id,
            shard_count=self.shard_count,
            cell_count=plan.cell_count,
            max_retries=self.max_retries,
            outcomes=list(outcomes),
        )
        failed = report.failed_shards
        merge_error: Optional[Exception] = None
        if not failed:
            try:
                report.result = self.runner.merge_shards(plan, name=self.experiment_id)
                report.merged = True
            except Exception as error:
                # The report (the post-mortem) must land even when the merge
                # finds e.g. stale foreign shard journals in the shared store.
                merge_error = error
        report.duration_seconds = time.monotonic() - started
        report.path = self.journal_dir / f"{self.experiment_id}.orchestrator.json"
        save_json(report.path, report.as_dict())
        self._emit(f"report written to {report.path}")
        if merge_error is not None:
            raise OrchestratorError(
                f"every shard of {self.experiment_id} succeeded but merging "
                f"failed: {merge_error}",
                report=report,
            ) from merge_error
        if failed:
            names = ", ".join(spec.describe() for spec in failed)
            reasons = "; ".join(
                outcome.attempts[-1].reason or "unknown"
                for outcome in report.outcomes
                if not outcome.succeeded
            )
            raise OrchestratorError(
                f"shard(s) {names} of {self.experiment_id} failed after "
                f"{self.max_retries + 1} attempt(s): {reasons}",
                report=report,
            )
        return report

    async def _drive_shard(self, spec: ShardSpec) -> ShardOutcome:
        """Run one shard to success or retry exhaustion."""
        journal_path = spec.journal_path(self.journal_dir, self.experiment_id)
        outcome = ShardOutcome(
            shard=spec,
            assigned_cells=len(spec.cell_indices(self.plan.cell_count)),
        )
        total = self.max_retries + 1
        for number in range(1, total + 1):
            # First attempts resume too when a journal is already on disk —
            # e.g. a previous orchestrate run that died; completed cells are
            # never re-executed.
            resume = number > 1 or journal_path.exists()
            attempt = await self._attempt(spec, number, journal_path, resume)
            outcome.attempts.append(attempt)
            if attempt.reason is None:
                self._emit(
                    f"shard {spec.describe()}: done — "
                    f"{attempt.cells_completed}/{outcome.assigned_cells} cells "
                    f"journaled in {attempt.duration_seconds:.1f}s "
                    f"(attempt {number}/{total})"
                )
                break
            if number < total:
                self._emit(
                    f"shard {spec.describe()}: attempt {number} failed "
                    f"({attempt.reason}); retrying with --resume "
                    f"(attempt {number + 1}/{total})"
                )
            else:
                self._emit(
                    f"shard {spec.describe()}: FAILED after {total} attempt(s) "
                    f"— {attempt.reason}"
                )
        return outcome

    async def _attempt(
        self, spec: ShardSpec, number: int, journal_path: Path, resume: bool
    ) -> ShardAttempt:
        """One subprocess attempt: spawn, tail the journal, decide the outcome."""
        command = self.shard_command(spec, number, resume)
        self._emit(
            f"shard {spec.describe()}: attempt {number} starting — "
            + " ".join(shlex.quote(part) for part in command)
        )
        started = time.monotonic()
        process = await asyncio.create_subprocess_exec(
            *command,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
            env=self._subprocess_env(),
        )
        # Drain stderr concurrently so a chatty shard can never fill the pipe
        # and deadlock against our poll loop.
        stderr_task = asyncio.ensure_future(process.stderr.read())
        wait_task = asyncio.ensure_future(process.wait())
        kill_reason: Optional[str] = None
        progress = JournalProgress(journal_path)
        cells = progress.poll()
        last_change = time.monotonic()
        try:
            while True:
                done, _ = await asyncio.wait({wait_task}, timeout=self.poll_interval)
                now = time.monotonic()
                current = progress.poll()
                if current != cells:
                    cells = current
                    last_change = now
                    self._emit(
                        f"shard {spec.describe()}: {cells} cell(s) journaled "
                        f"(attempt {number})"
                    )
                if wait_task in done:
                    break
                if kill_reason is None:
                    if (
                        self.inject_kill_shard == spec.index
                        and number == 1
                        and cells >= 1
                    ):
                        kill_reason = (
                            "injected kill (--inject-kill-shard chaos hook, "
                            "first attempt)"
                        )
                    elif (
                        self.stall_timeout is not None
                        and now - last_change > self.stall_timeout
                    ):
                        kill_reason = (
                            f"stalled: no journal progress for more than "
                            f"{self.stall_timeout:.0f}s"
                        )
                    if kill_reason is not None:
                        self._emit(
                            f"shard {spec.describe()}: killing attempt {number} — "
                            f"{kill_reason}"
                        )
                        process.kill()
            returncode = wait_task.result()
            stderr_text = (await stderr_task).decode("utf8", errors="replace")
        finally:
            # Never orphan a shard: on cancellation (Ctrl+C) or any monitor
            # error, the subprocess dies with the orchestrator.  Awaiting the
            # tasks (rather than cancelling them) lets the event loop reap
            # the killed child and close its pipes cleanly.
            if process.returncode is None:
                process.kill()
            await asyncio.gather(wait_task, stderr_task, return_exceptions=True)
        duration = time.monotonic() - started
        cells = progress.poll()
        if returncode == 0 and kill_reason is None:
            if self.inject_kill_shard == spec.index and number == 1:
                # The shard finished between polls, before the kill could
                # land.  Treat the attempt as failed anyway so the chaos hook
                # stays deterministic: the retry resumes a complete journal,
                # executes nothing, and exits 0.
                kill_reason = (
                    "injected kill (--inject-kill-shard chaos hook, first "
                    "attempt; shard finished before the kill landed, attempt "
                    "treated as failed)"
                )
                reason = kill_reason
            else:
                reason = None
        elif kill_reason is not None:
            reason = kill_reason
        else:
            tail = [line for line in stderr_text.strip().splitlines() if line.strip()]
            reason = f"exit status {returncode}"
            if tail:
                reason += f": {tail[-1].strip()}"
        return ShardAttempt(
            number=number,
            duration_seconds=duration,
            returncode=returncode,
            cells_completed=cells,
            resumed=resume,
            reason=reason,
        )


# ------------------------------------------------------------------ templates
def _shard_extra(shard_args: Sequence[str]) -> str:
    """Render forwarded shard CLI arguments for a shell template."""
    return " ".join(shlex.quote(str(arg)) for arg in shard_args)


def render_slurm_script(
    experiment_id: str,
    shard_count: int,
    *,
    journal_dir,
    workers_per_shard: int = 1,
    shard_args: Sequence[str] = (),
    time_limit: str = "04:00:00",
) -> str:
    """A ready-to-submit Slurm array-job script for an ``n``-way sharded run.

    Each array task runs one ``--shard k/n --resume`` invocation — the same
    command the local orchestrator spawns — so Slurm's own ``--requeue``
    machinery resumes a preempted shard from its journal.  Merge afterwards
    with ``--merge-only`` from any node that sees ``journal_dir``.
    """
    extra = _shard_extra(shard_args)
    extra = f" {extra}" if extra else ""
    return f"""#!/bin/bash
#SBATCH --job-name=frlfi-{experiment_id}
#SBATCH --array=1-{shard_count}
#SBATCH --ntasks=1
#SBATCH --cpus-per-task={workers_per_shard}
#SBATCH --time={time_limit}
#SBATCH --requeue
# One array task per shard; --resume makes a requeued task continue from its
# journal in the shared store instead of recomputing finished cells.
repro-campaign {experiment_id} \\
  --shard "${{SLURM_ARRAY_TASK_ID}}/{shard_count}" \\
  --journal-dir {shlex.quote(str(journal_dir))} \\
  --workers {workers_per_shard}{extra} --resume

# After the whole array completes, merge from any node:
#   repro-campaign {experiment_id} --merge-only \\
#     --journal-dir {shlex.quote(str(journal_dir))} --output results/
"""


def render_k8s_manifest(
    experiment_id: str,
    shard_count: int,
    *,
    journal_dir,
    workers_per_shard: int = 1,
    shard_args: Sequence[str] = (),
    image: str = "frl-fi-repro:latest",
    journal_claim: str = "frlfi-journals",
) -> str:
    """A ready-to-submit Kubernetes indexed-Job manifest for a sharded run.

    ``completionMode: Indexed`` gives each pod a ``JOB_COMPLETION_INDEX``
    which maps to ``--shard $((index+1))/n``; ``restartPolicy: OnFailure``
    plus ``--resume`` means a rescheduled pod continues from its shard
    journal on the shared volume (``journal_claim``).  Merge afterwards with
    ``--merge-only`` from any pod mounting the same volume.
    """
    extra = _shard_extra(shard_args)
    extra = f" {extra}" if extra else ""
    shard_command = (
        f"repro-campaign {experiment_id}"
        f' --shard "$((JOB_COMPLETION_INDEX + 1))/{shard_count}"'
        f" --journal-dir {shlex.quote(str(journal_dir))}"
        f" --workers {workers_per_shard}{extra} --resume"
    )
    return f"""apiVersion: batch/v1
kind: Job
metadata:
  name: frlfi-{experiment_id}
spec:
  completions: {shard_count}
  parallelism: {shard_count}
  completionMode: Indexed
  backoffLimit: {shard_count * 3}
  template:
    spec:
      restartPolicy: OnFailure
      containers:
        - name: shard
          image: {image}
          command: ["/bin/sh", "-c"]
          args:
            - {shard_command}
          volumeMounts:
            - name: journals
              mountPath: {journal_dir}
      volumes:
        - name: journals
          persistentVolumeClaim:
            claimName: {journal_claim}
# After the Job completes, merge from any pod mounting the journal volume:
#   repro-campaign {experiment_id} --merge-only --journal-dir {journal_dir} --output results/
"""
