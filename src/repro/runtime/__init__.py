"""Runtime layer: parallel campaign execution over independent cells.

This package is the scaling seam of the reproduction.  Experiments are
decomposed into :class:`~repro.runtime.cells.CellTask` grids by the plan
builders in :mod:`repro.runtime.plans` and executed — serially or on a
process pool — by :class:`~repro.runtime.runner.CampaignRunner`.  Per-cell
randomness always derives from keyed ``numpy.random.SeedSequence`` children,
so execution placement never changes results.

Only the dependency-free cell primitives are imported eagerly; the plan and
runner layers sit *above* :mod:`repro.core` (which itself imports
``repro.runtime.cells``), so they are exposed lazily to keep the import graph
acyclic.
"""

from repro.runtime.cells import CampaignPlan, CellTask, derive_cell_seeds
from repro.runtime.residency import PolicyRef, resolve_policy_ref

_LAZY_EXPORTS = {
    "CampaignContext": "repro.runtime.plans",
    "build_plan": "repro.runtime.plans",
    "decomposed_experiment_ids": "repro.runtime.plans",
    "plannable_experiment_ids": "repro.runtime.plans",
    "CampaignError": "repro.runtime.runner",
    "CampaignRunner": "repro.runtime.runner",
    "CellExecutionError": "repro.runtime.runner",
    "default_worker_count": "repro.runtime.runner",
    "CampaignJournal": "repro.runtime.journal",
    "JournalProgress": "repro.runtime.journal",
    "count_completed_cells": "repro.runtime.journal",
    "plan_fingerprint": "repro.runtime.journal",
    "BackendError": "repro.runtime.backends",
    "BackendScheduler": "repro.runtime.scheduler",
    "BackendSpec": "repro.runtime.backends",
    "ExecutionBackend": "repro.runtime.backends",
    "LocalProcessBackend": "repro.runtime.backends",
    "SSHBackend": "repro.runtime.backends",
    "SlurmBackend": "repro.runtime.backends",
    "build_backend": "repro.runtime.backends",
    "build_backends": "repro.runtime.backends",
    "shard_argv": "repro.runtime.backends",
    "OrchestratorError": "repro.runtime.orchestrator",
    "OrchestratorReport": "repro.runtime.orchestrator",
    "ShardOrchestrator": "repro.runtime.orchestrator",
    "render_k8s_manifest": "repro.runtime.orchestrator",
    "render_slurm_script": "repro.runtime.orchestrator",
    "ShardMergeError": "repro.runtime.sharding",
    "ShardRunReport": "repro.runtime.sharding",
    "ShardSpec": "repro.runtime.sharding",
    "load_shard_outputs": "repro.runtime.sharding",
    "Campaign": "repro.runtime.service",
    "CampaignService": "repro.runtime.service",
    "CampaignSpec": "repro.runtime.service",
    "ServiceError": "repro.runtime.service",
    "QuotaQueue": "repro.runtime.service_queue",
    "ServiceDispatcher": "repro.runtime.service_queue",
    "ServiceAPI": "repro.runtime.service_api",
    "ServiceClient": "repro.runtime.service_api",
    "ServiceClientError": "repro.runtime.service_api",
    "wait_for_socket": "repro.runtime.service_api",
}

__all__ = [
    "CampaignPlan",
    "CellTask",
    "PolicyRef",
    "derive_cell_seeds",
    "resolve_policy_ref",
    *sorted(_LAZY_EXPORTS),
]


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
