"""Multi-machine shard execution over the campaign journal wire format.

A sharded campaign is "each machine runs a disjoint subset of cell indices,
journals land in a shared store, any machine merges":

* ``repro-campaign fig6a --shard 2/4 --journal-dir /shared/journals`` runs
  only the cells :func:`repro.runtime.cells.shard_cell_indices` assigns to
  shard 2 of 4, streaming them to ``fig6a.shard-2-of-4.jsonl``.  A shard run
  *refuses to merge* — it returns a :class:`ShardRunReport`, not a result
  payload, because no single shard holds every cell output.
* ``repro-campaign fig6a --merge-only --journal-dir /shared/journals``
  validates every shard journal against the plan fingerprint, verifies the
  union of journaled indices covers the whole plan (reporting exactly which
  cells and shards are missing otherwise), and merges in plan order — never
  executing a cell.  Because journals store JSON-decoded outputs and the
  merge consumes them in plan order, the merged payload is byte-identical to
  a single-machine run.

Portability across machines rests on the versioned, machine-independent plan
fingerprint (:func:`repro.runtime.journal.plan_fingerprint`): shard journals
written under different ``--cache-dir`` paths (or different hosts entirely)
all validate against the merging machine's plan.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.runtime.cells import shard_cell_indices
from repro.runtime.journal import CampaignJournal, normalize_cell_key, plan_fingerprint

#: ``<label>.shard-<k>-of-<n>.jsonl`` — the shard journal naming scheme.
_SHARD_FILE_PATTERN = re.compile(r"\.shard-(?P<index>\d+)-of-(?P<count>\d+)\.jsonl$")


class ShardMergeError(RuntimeError):
    """A merge-only pass found missing, inconsistent or invalid shard journals."""


def parse_shard_journal_name(file_name: str) -> Optional[Tuple[str, "ShardSpec"]]:
    """Split a shard journal file name into ``(label, ShardSpec)``.

    ``"fig6a.shard-2-of-4.jsonl"`` parses to ``("fig6a", ShardSpec(2, 4))``;
    any other name — including plain merged journals like ``"fig6a.jsonl"``
    and malformed coordinates like ``shard-0-of-4`` — returns ``None``.  This
    is the one public decoder of the naming scheme, shared by the merge path
    here and the result store's directory scan.
    """
    match = _SHARD_FILE_PATTERN.search(file_name)
    if match is None:
        return None
    try:
        spec = ShardSpec(index=int(match.group("index")), count=int(match.group("count")))
    except ValueError:
        return None
    return file_name[: match.start()], spec


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an ``n``-way campaign partition (``index`` is 1-based)."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"shard count must be >= 1, got {self.count}")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"shard index must be in 1..{self.count}, got {self.index} "
                "(shards are 1-based: '--shard 1/4' is the first of four)"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse the CLI spelling ``"k/n"`` (e.g. ``"2/4"``)."""
        match = re.fullmatch(r"(\d+)/(\d+)", str(text).strip())
        if match is None:
            raise ValueError(f"expected K/N (e.g. 2/4), got {text!r}")
        return cls(index=int(match.group(1)), count=int(match.group(2)))

    def describe(self) -> str:
        """The CLI spelling of this shard, ``"k/n"``."""
        return f"{self.index}/{self.count}"

    def cell_indices(self, cell_count: int) -> List[int]:
        """The plan indices this shard owns (strided partition)."""
        return shard_cell_indices(self.index, self.count, cell_count)

    def owner_of(self, cell_index: int) -> int:
        """The 1-based shard index that owns ``cell_index`` under this count."""
        return cell_index % self.count + 1

    def journal_name(self, label: str) -> str:
        """The shard journal file name, ``<label>.shard-k-of-n.jsonl``."""
        return f"{label}.shard-{self.index}-of-{self.count}.jsonl"

    def journal_path(self, journal_dir, label: str) -> Path:
        """The shard journal path under ``journal_dir``."""
        return Path(journal_dir) / self.journal_name(label)


@dataclass(frozen=True)
class ShardRunReport:
    """What a shard run produced: a journal, not a merged payload.

    Merging needs every shard's cells, so a shard run deliberately has no
    result object; the CLI prints this report and ``--merge-only`` (from any
    machine that can see the shared journal store) does the folding.
    """

    experiment_id: str
    shard: ShardSpec
    cell_count: int
    assigned: int
    executed: int
    resumed: int
    journal_path: Path

    def render(self) -> str:
        """One-line human-readable summary of the shard run."""
        return (
            f"{self.experiment_id} shard {self.shard.describe()}: "
            f"{self.assigned}/{self.cell_count} cells assigned "
            f"({self.executed} executed, {self.resumed} resumed) -> {self.journal_path} "
            "(merge with --merge-only once every shard has run)"
        )


def discover_shard_journals(journal_dir, label: str) -> List[Tuple[ShardSpec, Path]]:
    """The shard journal files for ``label``, sorted by shard index.

    Raises :class:`ShardMergeError` when no shard journals exist, when the
    files disagree on the shard count, or when whole shard files are missing
    — a merge must see one journal per shard before cell-level coverage is
    even worth checking.
    """
    journal_dir = Path(journal_dir)
    found: Dict[int, Tuple[ShardSpec, Path]] = {}
    counts = set()
    for path in sorted(journal_dir.glob(f"{label}.shard-*-of-*.jsonl")):
        match = _SHARD_FILE_PATTERN.search(path.name)
        if match is None:
            continue
        try:
            spec = ShardSpec(index=int(match.group("index")), count=int(match.group("count")))
        except ValueError as error:
            raise ShardMergeError(f"shard journal {path} has an invalid name: {error}")
        counts.add(spec.count)
        found[spec.index] = (spec, path)
    if not found:
        raise ShardMergeError(
            f"no shard journals named {label!r} under {journal_dir} "
            f"(expected {label}.shard-K-of-N.jsonl files)"
        )
    if len(counts) != 1:
        raise ShardMergeError(
            f"shard journals for {label!r} under {journal_dir} disagree on the shard "
            f"count: found counts {sorted(counts)}; merge shards from one partition only"
        )
    count = counts.pop()
    missing = sorted(set(range(1, count + 1)) - set(found))
    if missing:
        raise ShardMergeError(
            f"missing shard journal(s) for {label!r}: "
            f"{', '.join(f'{index}/{count}' for index in missing)} "
            f"(have {', '.join(found[index][0].describe() for index in sorted(found))})"
        )
    return [found[index] for index in sorted(found)]


def load_shard_outputs(plan, journal_dir, label: Optional[str] = None) -> Dict[int, object]:
    """Validate and load every shard journal of ``plan`` into one output map.

    Every journal must carry the plan's (machine-independent) fingerprint and
    its own shard coordinates; every journaled index must belong to the shard
    that recorded it; and the union of indices must cover the whole plan.
    Violations raise :class:`ShardMergeError` naming the exact journals,
    shards and cells involved — a merge never silently recomputes.
    """
    label = label or plan.experiment_id
    outputs: Dict[int, object] = {}
    shard_specs = discover_shard_journals(journal_dir, label)
    # Digest the plan once, not once per shard: fingerprinting serializes
    # every cell's key and kwargs, which is the dominant cost of a merge over
    # many shards of a large plan.
    fingerprint = plan_fingerprint(plan)
    keys = [normalize_cell_key(cell.key) for cell in plan.cells]
    for spec, path in shard_specs:
        journal = CampaignJournal(
            path, plan, shard=(spec.index, spec.count), fingerprint=fingerprint, keys=keys
        )
        completed = journal.load()
        if journal.invalid_reason is not None:
            raise ShardMergeError(
                f"shard journal {path} is not usable: {journal.invalid_reason}"
            )
        for index in completed:
            owner = spec.owner_of(index)
            if owner != spec.index:
                raise ShardMergeError(
                    f"shard journal {path} records cell {index}, which belongs to "
                    f"shard {owner}/{spec.count}, not {spec.describe()} — the journal "
                    "was written under a different partition"
                )
        outputs.update(completed)
    missing = [index for index in range(plan.cell_count) if index not in outputs]
    if missing:
        first_spec = shard_specs[0][0]
        by_shard: Dict[int, List[int]] = {}
        for index in missing:
            by_shard.setdefault(first_spec.owner_of(index), []).append(index)
        detail = "; ".join(
            f"shard {shard}/{first_spec.count} is missing cells {cells}"
            for shard, cells in sorted(by_shard.items())
        )
        raise ShardMergeError(
            f"shard journals for {label!r} cover only "
            f"{plan.cell_count - len(missing)}/{plan.cell_count} cells — {detail}. "
            "Re-run (or --resume) the incomplete shard(s) before merging."
        )
    return outputs
