"""Campaign plan builders for every registered paper artifact.

:func:`build_plan` maps an experiment identifier (``fig3a`` ... ``fig9``,
``table1``) to a :class:`~repro.runtime.cells.CampaignPlan`.  Every artifact
with independent units of work decomposes into many cells (the heatmaps, the
inference sweeps, the swarm-size/interval/data-type studies, the per-parameter
Fig. 3d bit breakdown, Table I); only the inherently sequential Fig. 3e
convergence loop and the static Fig. 9 table fall back to a single-cell plan
that runs the whole experiment function — still off the main process when a
pool is available, just not spread across workers.

This module is the single source of truth for decomposed-artifact parameters:
:class:`repro.core.framework.FaultCharacterizationFramework` routes those
identifiers through :func:`build_plan` too, so ``framework.run(experiment_id)``
and a campaign runner produce identical results by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional

from repro.core.config import DroneScale, GridWorldScale
from repro.core.experiments.drone_inference import datatype_study_plan
from repro.core.experiments.drone_training import (
    communication_interval_plan,
    drone_count_plan,
    drone_training_plan,
)
from repro.core.experiments.gridworld_inference import gridworld_inference_plan
from repro.core.experiments.gridworld_training import (
    gridworld_training_plan,
    policy_std_plan,
    weight_distribution_plan,
)
from repro.core.experiments.mitigation_experiments import (
    inference_mitigation_plan,
    training_mitigation_plan,
)
from repro.core.pretrained import PolicyCache, default_cache
from repro.runtime.cells import CampaignPlan, single_cell_plan


@dataclass
class CampaignContext:
    """Everything a plan builder needs: the scales and the shared cache."""

    gridworld_scale: GridWorldScale
    drone_scale: DroneScale
    cache: PolicyCache

    @classmethod
    def create(
        cls,
        gridworld_scale: Optional[GridWorldScale] = None,
        drone_scale: Optional[DroneScale] = None,
        cache: Optional[PolicyCache] = None,
    ) -> "CampaignContext":
        """Build a context, defaulting to ``fast`` scales and the default cache."""
        return cls(
            gridworld_scale=gridworld_scale or GridWorldScale.fast(),
            drone_scale=drone_scale or DroneScale.fast(),
            cache=cache or default_cache(),
        )


def run_whole_experiment(
    experiment_id: str,
    gridworld_scale: GridWorldScale,
    drone_scale: DroneScale,
    cache_dir: str,
):
    """Run one registered experiment end to end (the fallback cell body).

    Reconstructs a framework inside the worker process; the policy cache is
    shared through ``cache_dir``, so pretrained baselines are reused across
    processes rather than retrained.
    """
    from repro.core.framework import FaultCharacterizationFramework

    framework = FaultCharacterizationFramework(
        gridworld_scale=gridworld_scale,
        drone_scale=drone_scale,
        cache=PolicyCache(Path(cache_dir)),
    )
    return framework.run(experiment_id)


_DECOMPOSED_BUILDERS: Dict[str, Callable[[CampaignContext], CampaignPlan]] = {
    "fig3a": lambda ctx: gridworld_training_plan("agent", scale=ctx.gridworld_scale),
    "fig3b": lambda ctx: gridworld_training_plan("server", scale=ctx.gridworld_scale),
    "fig3c": lambda ctx: gridworld_training_plan("single", scale=ctx.gridworld_scale),
    # The canonical Table I system sizes at reproduction scale.
    "table1": lambda ctx: policy_std_plan(scale=ctx.gridworld_scale, agent_counts=(1, 4, 8)),
    "fig4": lambda ctx: gridworld_inference_plan(scale=ctx.gridworld_scale, cache=ctx.cache),
    "fig5a": lambda ctx: drone_training_plan("agent", scale=ctx.drone_scale, cache=ctx.cache),
    "fig5b": lambda ctx: drone_training_plan("server", scale=ctx.drone_scale, cache=ctx.cache),
    "fig5c": lambda ctx: drone_training_plan("single", scale=ctx.drone_scale, cache=ctx.cache),
    "fig7a": lambda ctx: training_mitigation_plan(
        "gridworld", "server", scale=ctx.gridworld_scale, cache=ctx.cache
    ),
    "fig7b": lambda ctx: training_mitigation_plan(
        "drone", "server", scale=ctx.drone_scale, cache=ctx.cache
    ),
    "fig8a": lambda ctx: inference_mitigation_plan(
        "gridworld", scale=ctx.gridworld_scale, cache=ctx.cache
    ),
    "fig8b": lambda ctx: inference_mitigation_plan(
        "drone", scale=ctx.drone_scale, cache=ctx.cache
    ),
    "fig3d": lambda ctx: weight_distribution_plan(scale=ctx.gridworld_scale, cache=ctx.cache),
    # The canonical Fig. 6a swarm sizes at reproduction scale.
    "fig6a": lambda ctx: drone_count_plan(
        scale=ctx.drone_scale, drone_counts=(2, 4), cache=ctx.cache
    ),
    "fig6b": lambda ctx: communication_interval_plan(scale=ctx.drone_scale, cache=ctx.cache),
    "datatypes": lambda ctx: datatype_study_plan(scale=ctx.drone_scale, cache=ctx.cache),
}

# Artifacts without a finer decomposition, which run as one cell each:
# fig3e is inherently sequential (each extra-training round of the
# convergence loop depends on the previous evaluation), and fig9 is a cheap
# static comparison table.
_FALLBACK_IDS = ("fig3e", "fig9")


def decomposed_experiment_ids() -> list:
    """Identifiers with a true multi-cell decomposition."""
    return sorted(_DECOMPOSED_BUILDERS)


def plannable_experiment_ids() -> list:
    """Every identifier :func:`build_plan` accepts."""
    return sorted(set(_DECOMPOSED_BUILDERS) | set(_FALLBACK_IDS))


def build_plan(experiment_id: str, context: CampaignContext) -> CampaignPlan:
    """Build the campaign plan for ``experiment_id``."""
    builder = _DECOMPOSED_BUILDERS.get(experiment_id)
    if builder is not None:
        return builder(context)
    if experiment_id in _FALLBACK_IDS:
        return single_cell_plan(
            experiment_id,
            run_whole_experiment,
            {
                "experiment_id": experiment_id,
                "gridworld_scale": context.gridworld_scale,
                "drone_scale": context.drone_scale,
                "cache_dir": str(context.cache.cache_dir),
            },
        )
    raise KeyError(
        f"unknown experiment {experiment_id!r}; available: {plannable_experiment_ids()}"
    )
