"""Drone navigation fault injection: the paper's large-scale workload.

Run with::

    python examples/drone_navigation_fi.py

The script behaviour-clones the offline drone policy (cached on first run),
builds a federated swarm over per-drone corridor worlds, fine-tunes it, and
then measures the safe flight distance under server/agent faults and under
the three fixed-point data types from the paper's data-type study.
"""

from repro.core import DroneScale, experiments
from repro.core.pretrained import PolicyCache
from repro.core.workloads import build_drone_frl_system
from repro.core.fault_callbacks import make_training_fault


def main() -> None:
    scale = DroneScale(
        drone_count=2,
        max_steps=220,
        corridor_length=450.0,
        fine_tune_episodes=4,
        evaluation_attempts=1,
        pretrain_collection_episodes=2,
        pretrain_epochs=6,
        pretrain_dagger_iterations=2,
    )
    cache = PolicyCache()

    print("Pre-training the drone policy offline (behaviour cloning + DAgger)...")
    pretrained = cache.drone_policy(scale)
    print(f"  cloning accuracy: {pretrained['accuracy']:.1%}")
    print(f"  clean safe flight distance: {pretrained['flight_distance']:.0f} m")

    print("\nFine-tuning the federated swarm with a server fault (BER=1e-2)...")
    system = build_drone_frl_system(scale, initial_state=pretrained["policy"])
    fault = make_training_fault("server", bit_error_rate=1e-2,
                                injection_episode=scale.fine_tune_episodes // 2,
                                datatype=scale.datatype, rng=0)
    system.train(scale.fine_tune_episodes, callbacks=[fault])
    print(f"  safe flight distance after server fault: "
          f"{system.average_flight_distance(attempts=1):.0f} m")

    print("\nFine-tuning with an agent fault at the same BER...")
    system = build_drone_frl_system(scale, initial_state=pretrained["policy"])
    fault = make_training_fault("agent", bit_error_rate=1e-2,
                                injection_episode=scale.fine_tune_episodes // 2,
                                datatype=scale.datatype, rng=0)
    system.train(scale.fine_tune_episodes, callbacks=[fault])
    print(f"  safe flight distance after agent fault:  "
          f"{system.average_flight_distance(attempts=1):.0f} m")

    print("\nRunning the fixed-point data-type study (paper §IV-B-3)...")
    datatypes = experiments.datatype_study(
        scale=scale, ber_values=(0.0, 1e-3, 1e-2), cache=cache, repeats=1
    )
    print(datatypes.render())


if __name__ == "__main__":
    main()
