"""Quickstart: train a small FRL GridWorld system, inject a fault, measure the impact.

Run with::

    python examples/quickstart.py

The script trains a 4-agent federated GridWorld system, measures its clean
success rate, then injects a transient bit-flip fault into the server's
consensus policy and into a single agent's policy and reports how much each
hurts — the paper's central observation (server faults dominate) in a few
seconds of CPU time.
"""

from repro.core import GridWorldScale
from repro.core.experiments.inference_utils import (
    gridworld_agent_with_state,
    success_rate_over_envs,
)
from repro.core.workloads import build_gridworld_frl_system, gridworld_environments
from repro.faults import FaultInjector


def main() -> None:
    scale = GridWorldScale(agent_count=4, episodes=150, evaluation_attempts=10)

    print("Training a 4-agent federated GridWorld system "
          f"({scale.episodes} episodes, communication every "
          f"{scale.communication_interval} episodes)...")
    system = build_gridworld_frl_system(scale)
    system.train(scale.episodes)
    consensus = system.consensus_state()

    envs = gridworld_environments(scale)

    def success_rate(policy_state) -> float:
        agent = gridworld_agent_with_state(scale, policy_state, rng=0)
        return success_rate_over_envs(agent, envs, attempts_per_env=10) * 100.0

    clean = success_rate(consensus)
    print(f"Clean unified policy success rate: {clean:.1f}%")

    injector = FaultInjector(datatype=scale.datatype, model="transient", rng=1)
    ber = 0.01  # 1% of storage bits upset

    server_fault = injector.corrupt_state_dict(consensus, ber)
    print(f"Server fault at BER={ber:.0%}: success rate {success_rate(server_fault):.1f}% "
          "(every agent receives the corrupted policy)")

    # An agent fault corrupts one upload; the server's smoothing average
    # dilutes it across the swarm before it reaches anyone else.
    uploads = [agent.upload_state() for agent in system.agents]
    uploads[0] = injector.corrupt_state_dict(uploads[0], ber)
    smoothed = system.server.aggregate(uploads)
    print(f"Agent fault at BER={ber:.0%}:  success rate {success_rate(smoothed[1]):.1f}% "
          "(other agents receive the smoothed policy)")


if __name__ == "__main__":
    main()
