"""GridWorld fault-injection campaign: regenerate the paper's Fig. 3/4 trends.

Run with::

    python examples/gridworld_fault_campaign.py [--paper-scale] [--workers N]

Without flags the campaign runs at a laptop-friendly scale (a few minutes);
``--paper-scale`` switches to the paper's 12-agent / 1000-episode setup
(hours of CPU time).  ``--workers N`` fans the independent campaign cells out
over N processes — the merged results are byte-identical to the serial run,
because every cell derives its randomness from seeds keyed by its campaign
coordinates rather than from shared mutable RNG state.
"""

import argparse

from repro.analysis import check_heatmap_trend, check_series_order, experiment_report
from repro.core import GridWorldScale
from repro.core.experiments.gridworld_inference import gridworld_inference_plan
from repro.core.experiments.gridworld_training import gridworld_training_plan
from repro.core.pretrained import PolicyCache
from repro.runtime.runner import CampaignRunner, default_worker_count


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true",
                        help="run at the paper's full scale (very slow)")
    parser.add_argument("--agents", type=int, default=3, help="number of FRL agents")
    parser.add_argument("--episodes", type=int, default=100, help="training episodes")
    parser.add_argument("--workers", type=int, default=1,
                        help="campaign worker processes (0 = machine-sized default)")
    args = parser.parse_args()

    if args.paper_scale:
        scale = GridWorldScale.paper()
    else:
        scale = GridWorldScale(agent_count=args.agents, episodes=args.episodes,
                               evaluation_attempts=8)
    cache = PolicyCache()
    workers = args.workers if args.workers != 0 else default_worker_count()
    runner = CampaignRunner(gridworld_scale=scale, cache=cache, workers=workers)

    print(f"Running GridWorld training fault campaigns (Fig. 3a/3b) on {workers} worker(s)...")
    agent_heatmap = runner.run_plan(gridworld_training_plan(
        "agent", scale=scale, ber_values=(0.0, 0.01, 0.02), episode_fractions=(0.5, 0.9)
    ))
    server_heatmap = runner.run_plan(gridworld_training_plan(
        "server", scale=scale, ber_values=(0.0, 0.01, 0.02), episode_fractions=(0.5, 0.9)
    ))

    print("Running GridWorld inference fault sweep (Fig. 4)...")
    inference = runner.run_plan(gridworld_inference_plan(
        scale=scale, ber_values=(0.0, 0.01, 0.02), cache=cache, repeats=2,
        variants=("Multi-Trans-M", "Multi-Trans-1", "Single-Trans-M"),
    ))

    observations = [
        check_heatmap_trend(agent_heatmap, name="agent faults: higher BER degrades SR"),
        check_heatmap_trend(server_heatmap, name="server faults: higher BER degrades SR"),
        check_series_order(inference, better="Multi-Trans-1", worse="Multi-Trans-M",
                           name="single-step faults are benign"),
        check_series_order(inference, better="Multi-Trans-M", worse="Single-Trans-M",
                           name="FRL policy beats single-agent policy under faults"),
    ]
    print(experiment_report(
        {"fig3a": agent_heatmap, "fig3b": server_heatmap, "fig4": inference},
        observations=observations,
        title="GridWorld fault campaign",
    ))


if __name__ == "__main__":
    main()
