"""Fault detection and recovery demo: the paper's §V mitigation schemes.

Run with::

    python examples/mitigation_demo.py

The script demonstrates the two proposed low-overhead protections —
reward-drop-triggered server checkpointing during training and range-based
anomaly detection during inference — and prints the end-to-end overhead
comparison against DMR/TMR from the drone performance model (Fig. 9).
"""

from repro.core import GridWorldScale, experiments
from repro.core.fault_callbacks import make_training_fault
from repro.core.pretrained import PolicyCache
from repro.core.workloads import build_gridworld_frl_system
from repro.mitigation import ServerCheckpointCallback


def training_mitigation(scale: GridWorldScale) -> None:
    print("== Training-time protection: server checkpointing ==")
    unprotected = build_gridworld_frl_system(scale)
    fault = make_training_fault("server", bit_error_rate=0.02,
                                injection_episode=int(scale.episodes * 0.6),
                                datatype=scale.datatype, rng=0)
    unprotected.train(scale.episodes, callbacks=[fault])
    print(f"  success rate without protection: "
          f"{unprotected.average_success_rate(attempts=8):.1%}")

    protected = build_gridworld_frl_system(scale)
    fault = make_training_fault("server", bit_error_rate=0.02,
                                injection_episode=int(scale.episodes * 0.6),
                                datatype=scale.datatype, rng=0)
    protection = ServerCheckpointCallback(agent_count=protected.agent_count,
                                          drop_percent=25.0, consecutive_episodes=4,
                                          checkpoint_interval=3)
    protected.train(scale.episodes, callbacks=[fault, protection])
    print(f"  success rate with checkpointing:  "
          f"{protected.average_success_rate(attempts=8):.1%} "
          f"({protection.recovery_count} recoveries triggered)")


def inference_mitigation(scale: GridWorldScale, cache: PolicyCache) -> None:
    print("\n== Inference-time protection: range-based anomaly detection ==")
    result = experiments.inference_mitigation_sweep(
        "gridworld", scale=scale, ber_values=(0.0, 0.01, 0.02), cache=cache, repeats=3
    )
    print(result.render())
    print(f"  max improvement factor: {result.metadata['max_improvement_factor']:.2f}x "
          "(the paper reports up to 3.3x)")


def overhead_comparison() -> None:
    print("\n== End-to-end overhead: detection vs DMR vs TMR (Fig. 9) ==")
    print(experiments.overhead_comparison().render())


def main() -> None:
    scale = GridWorldScale(agent_count=3, episodes=100, evaluation_attempts=8)
    cache = PolicyCache()
    training_mitigation(scale)
    inference_mitigation(scale, cache)
    overhead_comparison()


if __name__ == "__main__":
    main()
