"""Fig. 6b — communication-interval trade-off: resilience vs communication cost."""

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, save_result
from repro.core import experiments


def test_fig6b_communication_interval(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.communication_interval_study(
            scale=BENCH_DRONE_SCALE,
            interval_multipliers=(1, 2, 3),
            fault_ber=1e-2,
            cache=BENCH_CACHE,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig6b", result)
    rounds = result.series["communication_rounds"]
    # The paper's headline cost saving: a longer interval communicates less.
    assert rounds[0] >= rounds[1] >= rounds[2]
    assert rounds[2] < rounds[0]
    # Flight distances stay positive in every scenario.
    for name in ("no_fault", "agent_fault", "server_fault"):
        assert all(value > 0.0 for value in result.series[name])
