"""Fig. 6b — communication-interval trade-off: resilience vs communication cost.

Runs as a campaign of independent (interval multiplier, fault scenario)
cells; pass ``--workers N`` to pytest to fan the cells out over N processes
(the merged result is byte-identical to the serial run).
"""

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, run_plan, save_result
from repro.core.experiments.drone_training import communication_interval_plan


def test_fig6b_communication_interval(benchmark, campaign_workers):
    plan = communication_interval_plan(
        scale=BENCH_DRONE_SCALE,
        interval_multipliers=(1, 2, 3),
        fault_ber=1e-2,
        cache=BENCH_CACHE,
    )
    result = benchmark.pedantic(
        run_plan, args=(plan,), kwargs={"workers": campaign_workers}, rounds=1, iterations=1
    )
    save_result("fig6b", result)
    rounds = result.series["communication_rounds"]
    # The paper's headline cost saving: a longer interval communicates less.
    assert rounds[0] >= rounds[1] >= rounds[2]
    assert rounds[2] < rounds[0]
    # Flight distances stay positive in every scenario.
    for name in ("no_fault", "agent_fault", "server_fault"):
        assert all(value > 0.0 for value in result.series[name])
