"""Fig. 3a/3b/3c — GridWorld training heatmaps (agent / server / single-agent).

Regenerates the success-rate heatmaps over (BER x fault-injection episode) for
FRL agent faults, FRL server faults and the single-agent baseline.  The paper
observations checked here: higher BER degrades success rate, and the no-fault
row stays near the clean baseline.

Each heatmap runs as a campaign of independent (BER, episode) cells; pass
``--workers N`` to pytest to fan the cells out over N processes (the merged
result is byte-identical to the serial run).
"""

import pytest

from benchmarks._common import (
    BENCH_GRIDWORLD_SCALE,
    GRIDWORLD_BERS,
    GRIDWORLD_EPISODE_FRACTIONS,
    run_plan,
    save_result,
)
from repro.analysis import check_heatmap_trend
from repro.core.experiments.gridworld_training import gridworld_training_plan


def _run(location: str, workers: int):
    plan = gridworld_training_plan(
        location,
        scale=BENCH_GRIDWORLD_SCALE,
        ber_values=GRIDWORLD_BERS,
        episode_fractions=GRIDWORLD_EPISODE_FRACTIONS,
    )
    return run_plan(plan, workers=workers)


@pytest.mark.parametrize("location,figure", [("agent", "fig3a"), ("server", "fig3b"),
                                             ("single", "fig3c")])
def test_fig3_training_heatmap(benchmark, campaign_workers, location, figure):
    result = benchmark.pedantic(_run, args=(location, campaign_workers), rounds=1, iterations=1)
    save_result(figure, result)
    assert result.values.shape == (len(GRIDWORLD_BERS), len(GRIDWORLD_EPISODE_FRACTIONS))
    trend = check_heatmap_trend(result, tolerance=0.25)
    save_result(f"{figure}_trend", trend)
    # The no-fault row must stay reasonably healthy; the highest-BER row may
    # not exceed it (the paper's headline degradation trend).  The single-agent
    # baseline learns from a single maze and a much smaller experience budget,
    # so only a weaker floor is demanded of it — which is itself the paper's
    # observation that the FRL system outperforms the single-agent system.
    minimum_baseline = 40.0 if location in ("agent", "server") else 10.0
    assert result.values[0].mean() >= minimum_baseline
    # The single-agent panel is reported for completeness but, at a single
    # repetition with an under-trained baseline, its per-cell values are too
    # noisy for a strict monotonicity assertion (the FRL-vs-single comparison
    # is asserted on the inference sweep instead, see bench_fig4).
    if location in ("agent", "server"):
        assert trend.holds
