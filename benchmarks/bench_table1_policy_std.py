"""Table I — standard deviation of the consensus policy vs swarm size."""

from benchmarks._common import BENCH_GRIDWORLD_SCALE, save_result
from repro.core import experiments


def test_table1_policy_std(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.policy_std_table(scale=BENCH_GRIDWORLD_SCALE, agent_counts=(1, 4, 8)),
        rounds=1,
        iterations=1,
    )
    save_result("table1", result)
    stds = result.column("policy std")
    assert len(stds) == 3
    assert all(0.0 < value < 0.5 for value in stds)
    # Paper trend: the multi-agent consensus policy separates good from bad
    # actions at least as sharply as the single-agent policy.
    assert max(stds[1], stds[2]) >= stds[0] * 0.8
