"""Merge-only folding of shard journals — the multi-machine endgame.

Runs fig6a as two ``--shard``-style invocations (the setup, not benchmarked)
and measures the ``--merge-only`` pass that folds the shard journals back
into the final payload.  The merge reads journals and accumulates in plan
order — it executes no cells — so its cost is what a cluster pays *per
machine-hour saved*: it should stay milliseconds-scale while the sharded
execution it replaces takes the campaign's full wall clock.

Byte-identity with the direct (unsharded) run is asserted, not just timed.
"""

import json

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, run_plan, save_result
from repro.core.experiments.drone_training import drone_count_plan
from repro.runtime.runner import CampaignRunner


def _plan():
    return drone_count_plan(
        scale=BENCH_DRONE_SCALE,
        drone_counts=(2, 4),
        ber_values=(0.0, 1e-2),
        cache=BENCH_CACHE,
    )


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def test_fig6a_merge_only(benchmark, tmp_path, campaign_workers):
    journal_dir = tmp_path / "journals"
    for shard in ("1/2", "2/2"):
        runner = CampaignRunner(
            workers=campaign_workers, journal_dir=journal_dir, shard=shard
        )
        plan = _plan()
        runner.run_plan(plan, journal=runner.journal_for(plan))

    merger = CampaignRunner(journal_dir=journal_dir)
    result = benchmark.pedantic(
        merger.merge_shards, args=(_plan(),), rounds=3, iterations=1
    )
    save_result("fig6a_merge_only", result)
    # The whole point of the wire format: merging shard journals reproduces
    # the unsharded campaign payload byte for byte.
    assert _payload(result) == _payload(run_plan(_plan()))
