"""Submission-payload size: by-reference vs by-value policy shipping.

Before per-worker policy residency, decomposed plans shipped pretrained
baselines to every cell *by value*: the pool re-pickled the same state dict
once per cell.  Cells now carry :class:`~repro.runtime.residency.PolicyRef`
handles and workers decode each referenced policy once.  This benchmark
pickles every cell of the policy-heavy plans both ways and reports the
payload shrink; the asserted floor is the acceptance criterion for the
residency refactor.
"""

import pickle

from benchmarks._common import (
    BENCH_CACHE,
    BENCH_DRONE_SCALE,
    BENCH_GRIDWORLD_SCALE,
    RESULTS_DIR,
)
from repro.core.experiments.drone_training import drone_training_plan
from repro.core.experiments.mitigation_experiments import inference_mitigation_plan
from repro.runtime.residency import PolicyRef, resolve_policy_ref
from repro.utils.serialization import save_json


def _submission_sizes(plan) -> dict:
    """Total pickled bytes of the plan's cells, by-ref and by-value."""
    by_ref = 0
    by_value = 0
    for cell in plan.cells:
        by_ref += len(pickle.dumps(cell))
        resolved = {
            name: resolve_policy_ref(value) if isinstance(value, PolicyRef) else value
            for name, value in cell.kwargs.items()
        }
        by_value += len(pickle.dumps({**cell.__dict__, "kwargs": resolved}))
    return {
        "cells": plan.cell_count,
        "by_ref_bytes": by_ref,
        "by_value_bytes": by_value,
        "shrink_factor": by_value / by_ref if by_ref else float("inf"),
    }


def test_submission_payload_shrink(benchmark):
    plans = {
        "fig5a": drone_training_plan("agent", scale=BENCH_DRONE_SCALE, cache=BENCH_CACHE),
        "fig8b": inference_mitigation_plan(
            "drone", scale=BENCH_DRONE_SCALE, cache=BENCH_CACHE
        ),
        "fig8a": inference_mitigation_plan(
            "gridworld", scale=BENCH_GRIDWORLD_SCALE, cache=BENCH_CACHE
        ),
    }
    report = benchmark.pedantic(
        lambda: {name: _submission_sizes(plan) for name, plan in plans.items()},
        rounds=1,
        iterations=1,
    )
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    save_json(RESULTS_DIR / "submission_payload.json", report)
    for name, sizes in report.items():
        print(
            f"{name}: {sizes['cells']} cells, "
            f"{sizes['by_value_bytes']} B by value -> {sizes['by_ref_bytes']} B by ref "
            f"({sizes['shrink_factor']:.1f}x smaller)"
        )
        # The acceptance floor: policy-heavy cells must no longer carry the
        # state dict — the by-ref submission is at least 5x smaller.
        assert sizes["shrink_factor"] > 5.0
