"""Fig. 3d — weight distribution and 0/1 bit breakdown of the trained policy.

Runs as a campaign of per-parameter-tensor cells; pass ``--workers N`` to
pytest to fan the cells out over N processes (the merged result is
byte-identical to the serial run).
"""

import pytest

from benchmarks._common import BENCH_CACHE, BENCH_GRIDWORLD_SCALE, run_plan, save_result
from repro.core.experiments.gridworld_training import weight_distribution_plan


def test_fig3d_weight_distribution(benchmark, campaign_workers):
    plan = weight_distribution_plan(scale=BENCH_GRIDWORLD_SCALE, cache=BENCH_CACHE)
    result = benchmark.pedantic(
        run_plan, args=(plan,), kwargs={"workers": campaign_workers}, rounds=1, iterations=1
    )
    save_result("fig3d", result)
    values = {row[0]: row[1] for row in result.rows}
    # The policy's value range is narrow (paper: roughly [-1, 1.3]) and the
    # storage contains more 0 bits than 1 bits.
    assert values["min weight"] < 0 < values["max weight"]
    assert values["max weight"] < 8.0
    assert values["0 bits (%)"] + values["1 bits (%)"] == pytest.approx(100.0)
    assert values["0 bits (%)"] >= 45.0
