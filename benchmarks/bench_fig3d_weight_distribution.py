"""Fig. 3d — weight distribution and 0/1 bit breakdown of the trained policy."""

import pytest

from benchmarks._common import BENCH_CACHE, BENCH_GRIDWORLD_SCALE, save_result
from repro.core import experiments


def test_fig3d_weight_distribution(benchmark):
    consensus = BENCH_CACHE.gridworld_policies(BENCH_GRIDWORLD_SCALE)["consensus"]
    result = benchmark.pedantic(
        lambda: experiments.weight_distribution(scale=BENCH_GRIDWORLD_SCALE, consensus=consensus),
        rounds=1,
        iterations=1,
    )
    save_result("fig3d", result)
    values = {row[0]: row[1] for row in result.rows}
    # The policy's value range is narrow (paper: roughly [-1, 1.3]) and the
    # storage contains more 0 bits than 1 bits.
    assert values["min weight"] < 0 < values["max weight"]
    assert values["max weight"] < 8.0
    assert values["0 bits (%)"] + values["1 bits (%)"] == pytest.approx(100.0)
    assert values["0 bits (%)"] >= 45.0
