"""Fig. 4 — GridWorld inference faults: Trans-1 vs Trans-M, multi vs single agent."""

from benchmarks._common import BENCH_CACHE, BENCH_GRIDWORLD_SCALE, run_plan, save_result
from repro.analysis import check_series_order
from repro.core.experiments.gridworld_inference import gridworld_inference_plan


def test_fig4_inference_sweep(benchmark, campaign_workers):
    result = benchmark.pedantic(
        lambda: run_plan(
            gridworld_inference_plan(
                scale=BENCH_GRIDWORLD_SCALE,
                ber_values=(0.0, 0.005, 0.01, 0.02),
                cache=BENCH_CACHE,
                repeats=2,
            ),
            workers=campaign_workers,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig4", result)
    # Paper observations: a single-step register fault (Trans-1) is nearly
    # harmless, persistent memory faults degrade with BER, and the FRL policy
    # tolerates them better than the single-agent policy.
    trans1 = check_series_order(result, better="Multi-Trans-1", worse="Multi-Trans-M",
                                name="Trans-1 is more benign than Trans-M")
    multi_vs_single = check_series_order(result, better="Multi-Trans-M", worse="Single-Trans-M",
                                         name="multi-agent beats single-agent")
    save_result("fig4_checks", f"{trans1}\n{multi_vs_single}")
    assert trans1.holds
    assert result.series["Multi-Trans-1"][-1] >= result.series["Multi-Trans-M"][-1]
    assert min(result.series["Multi-Trans-1"]) >= 50.0
