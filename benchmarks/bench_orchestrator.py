"""Orchestration overhead — what the shard driver costs on top of the work.

Runs the fig6a bench plan through ``ShardOrchestrator`` (two shard
subprocesses, journal tailing, merge) and compares against the direct
in-process campaign.  The orchestrator's tax is subprocess startup
(interpreter + numpy import per shard) plus journal polling; it is paid once
per shard, not per cell, so it amortizes to noise at paper scale — this
benchmark makes the floor visible at bench scale, where the tax is the
*worst* relative to the work.

Byte-identity between the orchestrated and the direct payload is asserted,
not just timed — the same contract CI's ``orchestrate-identity`` job pins
for the CLI.  The shard subprocesses rebuild the bench plan from this module
(the plan fingerprint digests cell keys and kwargs, not functions, so the
parent's and the workers' plans journal-match by construction).
"""

import asyncio
import json
import shutil
import sys
from pathlib import Path

import pytest

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, run_plan, save_result
from repro.core.experiments.drone_training import drone_count_plan
from repro.runtime.backends import LocalProcessBackend, SlurmBackend
from repro.runtime.orchestrator import ShardOrchestrator
from repro.runtime.runner import CampaignRunner

_REPO_ROOT = Path(__file__).resolve().parents[1]

_WORKER_SCRIPT = f"""\
import sys

sys.path.insert(0, {str(_REPO_ROOT / "src")!r})
sys.path.insert(0, {str(_REPO_ROOT)!r})

from benchmarks.bench_orchestrator import _plan
from repro.runtime.runner import CampaignRunner

shard, journal_dir = sys.argv[1], sys.argv[2]
resume = "--resume" in sys.argv[3:]
runner = CampaignRunner(journal_dir=journal_dir, shard=shard, resume=resume)
plan = _plan()
runner.run_plan(plan, journal=runner.journal_for(plan))
"""


def _plan():
    return drone_count_plan(
        scale=BENCH_DRONE_SCALE,
        drone_counts=(2,),
        ber_values=(0.0, 1e-2),
        cache=BENCH_CACHE,
    )


def _payload(result) -> str:
    return json.dumps(result.as_dict(), sort_keys=True)


def test_fig6a_orchestrated(benchmark, tmp_path):
    journal_dir = tmp_path / "journals"
    script = tmp_path / "bench_shard_worker.py"
    script.write_text(_WORKER_SCRIPT, encoding="utf8")
    reference = run_plan(_plan())  # also warms the policy cache for the shards

    def factory(spec, attempt_number, resume):
        command = [sys.executable, str(script), spec.describe(), str(journal_dir)]
        if resume:
            command.append("--resume")
        return command

    def orchestrate():
        # A fresh store per round: each round pays the full launch-watch-merge
        # cycle, never a resume of the previous round's journals.
        shutil.rmtree(journal_dir, ignore_errors=True)
        orchestrator = ShardOrchestrator(
            "fig6a",
            2,
            CampaignRunner(journal_dir=journal_dir),
            plan=_plan(),
            poll_interval=0.1,
            command_factory=factory,
        )
        return orchestrator.run()

    report = benchmark.pedantic(orchestrate, rounds=2, iterations=1)
    save_result("fig6a_orchestrated", report.result)
    assert report.merged
    assert _payload(report.result) == _payload(reference)


@pytest.mark.parametrize("backend_kind", ["local", "slurm-shim"])
def test_backend_launch_overhead(benchmark, tmp_path, monkeypatch, backend_kind):
    """Per-backend launch overhead: submit a no-op shard command, wait, reap.

    This isolates what each execution backend adds *per attempt* on top of
    the work — process spawn for ``local``; batch-script write, ``sbatch``
    submit, ``squeue`` polling, and ``sacct`` reaping for the Slurm path
    (measured against the ``tools/fake_slurm`` shim, so the number is the
    protocol overhead, not a cluster's queue wait).  Tracked per backend in
    the BENCH_*.json series so the orchestration-tax trend stays visible as
    backends evolve.
    """
    monkeypatch.setenv("FAKE_SLURM_STATE", str(tmp_path / "slurm-state"))
    if backend_kind == "local":
        backend = LocalProcessBackend()
    else:
        backend = SlurmBackend(
            bin_dir=Path(__file__).resolve().parents[1] / "tools" / "fake_slurm",
            work_dir=tmp_path / "slurm-work",
            poll_interval=0.02,
        )
    command = [sys.executable, "-c", "pass"]

    def launch_and_reap():
        async def cycle():
            launch = await backend.launch(command)
            returncode = await launch.wait()
            await launch.close()
            return returncode

        assert asyncio.run(cycle()) == 0

    benchmark.pedantic(launch_and_reap, rounds=5, iterations=1)
