"""Benchmark harness options.

``--workers N`` runs the campaign-decomposable benchmarks through the
parallel :class:`repro.runtime.CampaignRunner` instead of the serial
experiment functions.  ``N=0`` picks a machine-sized default; the merged
results are byte-identical either way, only the wall clock changes.  The
``FRLFI_BENCH_WORKERS`` environment variable is the equivalent knob for
environments that cannot pass pytest options (e.g. CI matrices).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=int(os.environ.get("FRLFI_BENCH_WORKERS", "1")),
        help="campaign worker processes for decomposable benchmarks "
        "(1 = serial, 0 = machine-sized default)",
    )


@pytest.fixture(scope="session")
def campaign_workers(request) -> int:
    workers = request.config.getoption("--workers")
    if workers == 0:
        from repro.runtime.runner import default_worker_count

        return default_worker_count()
    return max(1, workers)
