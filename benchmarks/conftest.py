"""Benchmark harness options.

``--workers N`` runs the campaign-decomposable benchmarks through the
parallel :class:`repro.runtime.CampaignRunner` instead of the serial
experiment functions.  ``N=0`` picks a machine-sized default; the merged
results are byte-identical either way, only the wall clock changes.
``--vectorize auto|on|off`` picks the lockstep cell-group evaluation mode,
under the same byte-identity contract.  The ``FRLFI_BENCH_WORKERS`` /
``FRLFI_BENCH_VECTORIZE`` environment variables are the equivalent knobs for
environments that cannot pass pytest options (e.g. CI matrices).
"""

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        action="store",
        type=int,
        default=int(os.environ.get("FRLFI_BENCH_WORKERS", "1")),
        help="campaign worker processes for decomposable benchmarks "
        "(1 = serial, 0 = machine-sized default)",
    )
    parser.addoption(
        "--vectorize",
        action="store",
        choices=("auto", "on", "off"),
        default=os.environ.get("FRLFI_BENCH_VECTORIZE", "auto"),
        help="lockstep (vectorized) evaluation of cell groups for the "
        "decomposable benchmarks (payloads are byte-identical either way)",
    )


@pytest.fixture(scope="session")
def campaign_workers(request) -> int:
    workers = request.config.getoption("--workers")
    if workers == 0:
        from repro.runtime.runner import default_worker_count

        return default_worker_count()
    return max(1, workers)


@pytest.fixture(scope="session")
def campaign_vectorize(request) -> str:
    return request.config.getoption("--vectorize")
