"""Fig. 5a/5b/5c — DroneNav fine-tuning heatmaps (agent / server / single-drone)."""

import pytest

from benchmarks._common import (
    BENCH_CACHE,
    BENCH_DRONE_SCALE,
    DRONE_BERS,
    DRONE_EPISODE_FRACTIONS,
    save_result,
)
from repro.analysis import check_heatmap_trend
from repro.core import experiments


def _run(location: str):
    return experiments.drone_training_heatmap(
        location,
        scale=BENCH_DRONE_SCALE,
        ber_values=DRONE_BERS,
        episode_fractions=DRONE_EPISODE_FRACTIONS,
        cache=BENCH_CACHE,
    )


@pytest.mark.parametrize("location,figure", [("agent", "fig5a"), ("server", "fig5b"),
                                             ("single", "fig5c")])
def test_fig5_drone_training_heatmap(benchmark, location, figure):
    result = benchmark.pedantic(_run, args=(location,), rounds=1, iterations=1)
    save_result(figure, result)
    assert result.values.shape == (len(DRONE_BERS), len(DRONE_EPISODE_FRACTIONS))
    # The no-fault row must fly a meaningful distance and the highest-BER row
    # must not beat it (the paper's degradation trend).
    assert result.values[0].mean() > 50.0
    trend = check_heatmap_trend(result, tolerance=0.25)
    save_result(f"{figure}_trend", trend)
    assert trend.holds
