"""Fig. 6a — resilience vs number of drones under agent/server faults."""

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, save_result
from repro.core import experiments


def test_fig6a_drone_count_sweep(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.drone_count_sweep(
            scale=BENCH_DRONE_SCALE,
            drone_counts=(2, 4),
            ber_values=(0.0, 1e-2),
            cache=BENCH_CACHE,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig6a", result)
    assert set(result.series) == {"(2,server)", "(2,agent)", "(4,server)", "(4,agent)"}
    # Every configuration must fly a meaningful distance in the no-fault column.
    for series in result.series.values():
        assert series[0] > 30.0
