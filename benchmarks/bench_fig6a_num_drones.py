"""Fig. 6a — resilience vs number of drones under agent/server faults.

Runs as a campaign of independent (drone count, fault location, BER) cells;
pass ``--workers N`` to pytest to fan the cells out over N processes (the
merged result is byte-identical to the serial run).
"""

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, run_plan, save_result
from repro.core.experiments.drone_training import drone_count_plan


def test_fig6a_drone_count_sweep(benchmark, campaign_workers):
    plan = drone_count_plan(
        scale=BENCH_DRONE_SCALE,
        drone_counts=(2, 4),
        ber_values=(0.0, 1e-2),
        cache=BENCH_CACHE,
    )
    result = benchmark.pedantic(
        run_plan, args=(plan,), kwargs={"workers": campaign_workers}, rounds=1, iterations=1
    )
    save_result("fig6a", result)
    assert set(result.series) == {"(2,server)", "(2,agent)", "(4,server)", "(4,agent)"}
    # Every configuration must fly a meaningful distance in the no-fault column.
    for series in result.series.values():
        assert series[0] > 30.0
