"""Fig. 6a — resilience vs number of drones under agent/server faults.

Runs as a campaign of independent (drone count, fault location, BER) cells;
pass ``--workers N`` to pytest to fan the cells out over N processes and
``--vectorize auto|on|off`` to pick the lockstep cell-group evaluation mode
(the merged result is byte-identical to the serial run either way).

``test_fig6a_vectorized_speedup`` additionally measures the single-worker
vectorized-vs-serial wall-clock ratio on this multi-cell grid and records it
to ``benchmarks/results/BENCH_fig6a_vectorize.json`` — the number
``docs/PERFORMANCE.md``'s performance model predicts and CI's bench-smoke
job uploads with its artifacts.
"""

import json
import time

from benchmarks._common import (
    BENCH_CACHE,
    BENCH_DRONE_SCALE,
    RESULTS_DIR,
    run_plan,
    save_result,
)
from repro.core.experiments.drone_training import drone_count_plan
from repro.utils.serialization import save_json


def _plan():
    return drone_count_plan(
        scale=BENCH_DRONE_SCALE,
        drone_counts=(2, 4),
        ber_values=(0.0, 1e-2),
        cache=BENCH_CACHE,
    )


def test_fig6a_drone_count_sweep(benchmark, campaign_workers, campaign_vectorize):
    plan = _plan()
    result = benchmark.pedantic(
        run_plan,
        args=(plan,),
        kwargs={"workers": campaign_workers, "vectorize": campaign_vectorize},
        rounds=1,
        iterations=1,
    )
    save_result("fig6a", result)
    assert set(result.series) == {"(2,server)", "(2,agent)", "(4,server)", "(4,agent)"}
    # Every configuration must fly a meaningful distance in the no-fault column.
    for series in result.series.values():
        assert series[0] > 30.0


def test_fig6a_vectorized_speedup():
    """Single-worker vectorized vs serial: identical bytes, ≥2× less wall clock.

    Both runs reuse the session policy cache, so the measured window is pure
    cell evaluation.  The ratio is recorded unconditionally (CI logs it even
    on one-CPU runners, where ``--workers`` cannot help but lockstep can).
    """
    run_plan(_plan())  # warm the pretrained-policy cache out of the timings

    start = time.perf_counter()
    serial = run_plan(_plan(), vectorize="off")
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    vectorized = run_plan(_plan(), vectorize="on")
    vectorized_seconds = time.perf_counter() - start

    identical = json.dumps(serial.as_dict(), sort_keys=True) == json.dumps(
        vectorized.as_dict(), sort_keys=True
    )
    ratio = serial_seconds / vectorized_seconds
    record = {
        "serial_seconds": serial_seconds,
        "vectorized_seconds": vectorized_seconds,
        "ratio": ratio,
        "identical": identical,
        "workers": 1,
        "cells": _plan().cell_count,
    }
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    save_json(RESULTS_DIR / "BENCH_fig6a_vectorize.json", record)
    print(f"\nfig6a vectorized-vs-serial: {ratio:.2f}x ({record})")

    assert identical, "vectorized fig6a payload diverged from serial"
    assert ratio >= 2.0, (
        f"expected >=2x single-worker speedup from lockstep evaluation, got "
        f"{ratio:.2f}x ({serial_seconds:.2f}s serial, {vectorized_seconds:.2f}s "
        "vectorized)"
    )
