"""Shared configuration for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures at a
CPU-friendly scale (see DESIGN.md §2 for the substitutions and EXPERIMENTS.md
for the paper-vs-measured comparison).  Rendered results are written to
``benchmarks/results/`` so the artifacts survive pytest's output capture.
Paper-scale runs are available by swapping the scales below for
``GridWorldScale.paper()`` / ``DroneScale.paper()``.
"""

from __future__ import annotations

from pathlib import Path

from repro.core.config import DroneScale, GridWorldScale
from repro.core.pretrained import PolicyCache
from repro.utils.serialization import save_json

RESULTS_DIR = Path(__file__).resolve().parent / "results"

# GridWorld benchmark scale: small enough for seconds-per-cell training runs,
# large enough that the trained policy solves most mazes.
BENCH_GRIDWORLD_SCALE = GridWorldScale(
    agent_count=3,
    episodes=100,
    max_steps=60,
    hidden_sizes=(20, 20),
    epsilon_decay_episodes=60,
    evaluation_attempts=8,
)

# DroneNav benchmark scale: 2 drones over 450 m corridors with a small CNN.
BENCH_DRONE_SCALE = DroneScale(
    drone_count=2,
    max_steps=220,
    corridor_length=450.0,
    fine_tune_episodes=4,
    learning_rate=2e-4,
    evaluation_attempts=2,
    pretrain_collection_episodes=3,
    pretrain_epochs=8,
    pretrain_dagger_iterations=3,
)

# Coarse sweep grids used by the heatmap benchmarks.
GRIDWORLD_BERS = (0.0, 0.01, 0.02)
GRIDWORLD_EPISODE_FRACTIONS = (0.5, 0.9)
DRONE_BERS = (0.0, 1e-2, 1e-1)
DRONE_EPISODE_FRACTIONS = (0.5,)

# One shared on-disk cache so the baseline policies are trained exactly once
# per benchmark session; campaign workers read the same directory.
BENCH_CACHE = PolicyCache(Path(__file__).resolve().parent / ".bench_cache")


def run_plan(plan, workers: int = 1, vectorize: str = "auto"):
    """Execute a campaign plan with ``workers`` processes (1 = serial).

    The campaign runner merges cell outputs in deterministic plan order, so
    the result is byte-identical at any worker count and any ``vectorize``
    mode — benchmarks use both knobs to trade wall clock only.  Scales and
    cache are baked into the plan by its builder; the runner only supplies
    the executor.
    """
    from repro.runtime.runner import CampaignRunner

    return CampaignRunner(workers=workers, vectorize=vectorize).run_plan(plan)


def save_result(name: str, result) -> None:
    """Persist a rendered result (text + JSON) under benchmarks/results/."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    text = result.render() if hasattr(result, "render") else str(result)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf8")
    if hasattr(result, "as_dict"):
        save_json(RESULTS_DIR / f"{name}.json", result.as_dict())
    print(f"\n=== {name} ===\n{text}\n")
