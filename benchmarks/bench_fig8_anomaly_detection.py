"""Fig. 8 — inference-time range-based anomaly detection (GridWorld & DroneNav)."""

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, BENCH_GRIDWORLD_SCALE, save_result
from repro.analysis import check_improvement
from repro.core import experiments


def test_fig8a_gridworld_anomaly_detection(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.inference_mitigation_sweep(
            "gridworld",
            scale=BENCH_GRIDWORLD_SCALE,
            ber_values=(0.0, 0.005, 0.01, 0.02),
            cache=BENCH_CACHE,
            repeats=3,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig8a", result)
    check = check_improvement(result, minimum_factor=1.0)
    save_result("fig8a_check", check)
    # The paper reports up to 3.3x; at minimum the mitigation must not hurt,
    # and under faults it should improve the average success rate.
    assert check.holds
    faulty_mean_plain = sum(result.series["no_mitigation"][1:]) / 3
    faulty_mean_protected = sum(result.series["mitigation"][1:]) / 3
    assert faulty_mean_protected >= faulty_mean_plain


def test_fig8b_drone_anomaly_detection(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.inference_mitigation_sweep(
            "drone",
            scale=BENCH_DRONE_SCALE,
            ber_values=(0.0, 1e-3, 1e-2),
            cache=BENCH_CACHE,
            repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig8b", result)
    check = check_improvement(result, minimum_factor=1.0)
    save_result("fig8b_check", check)
    assert check.holds
    assert all(value > 0.0 for value in result.series["mitigation"])
