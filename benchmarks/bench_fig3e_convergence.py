"""Fig. 3e — episodes to converge after a fault injected late in training."""

from benchmarks._common import BENCH_GRIDWORLD_SCALE, save_result
from repro.core import experiments


def test_fig3e_convergence_after_fault(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.convergence_after_fault(
            scale=BENCH_GRIDWORLD_SCALE,
            ber_values=(0.005, 0.02),
            injection_fraction=0.9,
            recovery_success_rate=0.85,
            evaluation_interval=10,
            max_extra_episodes=60,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig3e", result)
    assert set(result.series) == {"agent", "server"}
    # Recovery always needs at least the nominal training length, and the
    # paper's trend is that server faults take at least as long to shake off.
    for series in result.series.values():
        assert all(value >= BENCH_GRIDWORLD_SCALE.episodes for value in series)
    assert sum(result.series["server"]) >= sum(result.series["agent"]) - 20
