"""Ablations of the design choices called out in DESIGN.md §5.

These are not paper figures; they probe the sensitivity of the mitigation
schemes to their hyper-parameters (anomaly-detection margin, checkpoint
cadence, smoothing-average weight).
"""

import numpy as np

from benchmarks._common import BENCH_CACHE, BENCH_GRIDWORLD_SCALE, save_result
from repro.core import experiments
from repro.core.results import SweepResult
from repro.core.workloads import build_gridworld_frl_system
from repro.federated import AlphaSchedule, FederatedServer


def test_ablation_anomaly_margin(benchmark):
    """Detection margin: a tighter margin repairs more values but risks false alarms."""

    def run():
        series = {}
        for margin in (0.05, 0.10, 0.30):
            result = experiments.inference_mitigation_sweep(
                "gridworld",
                scale=BENCH_GRIDWORLD_SCALE,
                ber_values=(0.01,),
                margin=margin,
                cache=BENCH_CACHE,
                repeats=2,
            )
            series[f"margin={margin}"] = [result.series["mitigation"][0]]
        return SweepResult(
            title="Ablation: anomaly-detection margin",
            metric="success rate (%) at BER=1%",
            x_axis="scenario",
            x_values=["mitigated"],
            series=series,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_anomaly_margin", result)
    assert all(0.0 <= values[0] <= 100.0 for values in result.series.values())


def test_ablation_checkpoint_interval(benchmark):
    """Checkpoint cadence: rarer checkpoints still recover, with staler state."""

    def run():
        series = {}
        for interval in (1, 5):
            heatmap = experiments.training_mitigation_heatmap(
                "gridworld",
                "server",
                scale=BENCH_GRIDWORLD_SCALE,
                ber_values=(0.02,),
                episode_fractions=(0.6,),
                consecutive_episodes=4,
                checkpoint_interval=interval,
                cache=BENCH_CACHE,
            )
            series[f"every {interval} rounds"] = [float(heatmap.values[0, 0])]
        return SweepResult(
            title="Ablation: server checkpoint cadence",
            metric="success rate (%) under 2% BER server fault",
            x_axis="scenario",
            x_values=["protected"],
            series=series,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_checkpoint_interval", result)
    assert all(values[0] >= 0.0 for values in result.series.values())


def test_ablation_smoothing_alpha(benchmark):
    """Smoothing weight: consensus-heavy aggregation should not collapse training."""

    def run():
        series = {}
        for alpha, decay in ((0.9, 0.99), (0.5, 0.9)):
            system = build_gridworld_frl_system(BENCH_GRIDWORLD_SCALE)
            system.server = FederatedServer(AlphaSchedule(initial_alpha=alpha, decay=decay))
            system.train(BENCH_GRIDWORLD_SCALE.episodes)
            series[f"alpha0={alpha}"] = [
                system.average_success_rate(attempts=BENCH_GRIDWORLD_SCALE.evaluation_attempts)
                * 100.0
            ]
        return SweepResult(
            title="Ablation: smoothing-average weight",
            metric="success rate (%)",
            x_axis="scenario",
            x_values=["fault-free"],
            series=series,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("ablation_smoothing_alpha", result)
    values = np.array([values[0] for values in result.series.values()])
    assert (values > 30.0).all()
