"""Fig. 7 — training-time fault recovery with server checkpointing."""

from benchmarks._common import (
    BENCH_CACHE,
    BENCH_DRONE_SCALE,
    BENCH_GRIDWORLD_SCALE,
    GRIDWORLD_EPISODE_FRACTIONS,
    save_result,
)
from repro.core import experiments


def test_fig7a_gridworld_checkpointing(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.training_mitigation_heatmap(
            "gridworld",
            "server",
            scale=BENCH_GRIDWORLD_SCALE,
            ber_values=(0.0, 0.02),
            episode_fractions=GRIDWORLD_EPISODE_FRACTIONS,
            consecutive_episodes=4,
            checkpoint_interval=3,
            cache=BENCH_CACHE,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig7a", result)
    # With checkpoint recovery the protected success rate stays within a
    # reasonable band of the fault-free row (the paper reports >96 %).
    baseline = result.values[0].mean()
    protected = result.values[-1].mean()
    assert baseline > 40.0
    assert protected >= baseline * 0.5


def test_fig7b_drone_checkpointing(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.training_mitigation_heatmap(
            "drone",
            "server",
            scale=BENCH_DRONE_SCALE,
            ber_values=(0.0, 1e-1),
            episode_fractions=(0.5,),
            consecutive_episodes=1,
            checkpoint_interval=1,
            cache=BENCH_CACHE,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("fig7b", result)
    assert result.values[0, 0] > 50.0
    assert result.values[-1, 0] > 0.0
