"""Paper §IV-B-3 — fixed-point data-type resilience study.

Runs as a campaign of independent (BER, datatype, repeat) cells; pass
``--workers N`` to pytest to fan the cells out over N processes (the merged
result is byte-identical to the serial run).
"""

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, run_plan, save_result
from repro.core.experiments.drone_inference import datatype_study_plan


def test_datatype_study(benchmark, campaign_workers):
    plan = datatype_study_plan(
        scale=BENCH_DRONE_SCALE,
        ber_values=(0.0, 1e-3, 1e-2),
        cache=BENCH_CACHE,
        repeats=2,
    )
    result = benchmark.pedantic(
        run_plan, args=(plan,), kwargs={"workers": campaign_workers}, rounds=1, iterations=1
    )
    save_result("datatypes", result)
    assert set(result.series) == {"Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)"}
    # All formats agree in the fault-free column (same underlying policy).
    clean = [series[0] for series in result.series.values()]
    assert max(clean) - min(clean) < max(clean) * 0.5 + 1e-9
    # Paper trend: the format that just covers the parameter range (Q(1,4,11))
    # holds up at least as well as the unnecessarily wide Q(1,10,5) under the
    # highest BER.
    assert result.series["Q(1,4,11)"][-1] >= result.series["Q(1,10,5)"][-1] * 0.6
