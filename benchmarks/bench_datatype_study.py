"""Paper §IV-B-3 — fixed-point data-type resilience study."""

from benchmarks._common import BENCH_CACHE, BENCH_DRONE_SCALE, save_result
from repro.core import experiments


def test_datatype_study(benchmark):
    result = benchmark.pedantic(
        lambda: experiments.datatype_study(
            scale=BENCH_DRONE_SCALE,
            ber_values=(0.0, 1e-3, 1e-2),
            cache=BENCH_CACHE,
            repeats=2,
        ),
        rounds=1,
        iterations=1,
    )
    save_result("datatypes", result)
    assert set(result.series) == {"Q(1,4,11)", "Q(1,7,8)", "Q(1,10,5)"}
    # All formats agree in the fault-free column (same underlying policy).
    clean = [series[0] for series in result.series.values()]
    assert max(clean) - min(clean) < max(clean) * 0.5 + 1e-9
    # Paper trend: the format that just covers the parameter range (Q(1,4,11))
    # holds up at least as well as the unnecessarily wide Q(1,10,5) under the
    # highest BER.
    assert result.series["Q(1,4,11)"][-1] >= result.series["Q(1,10,5)"][-1] * 0.6
