"""Result-store ingest throughput over a generated many-cell journal.

The store's compaction cost is paid once per analysis session, but it must
stay linear in *new* bytes: the first ingest of a many-cell journal is the
worst case (every cell row inserted), and the re-ingest of an unchanged
directory is the common case (every file skipped on mtime/size).  Both are
measured; the re-ingest must also insert zero rows — the idempotence
contract, asserted here as well as in the unit tests.

The journal is generated through the real journal layer (not hand-written
JSONL), so the benchmark tracks the actual wire format.
"""

import json

from benchmarks._common import save_result
from repro.runtime.cells import CampaignPlan, CellTask
from repro.runtime.journal import CampaignJournal
from repro.runtime.store import ResultStore

CELL_COUNT = 2000


def _output(value: float) -> float:
    return value * 2.0


def _plan() -> CampaignPlan:
    cells = [
        CellTask(
            experiment_id="bench-store",
            key=("ber", index % 8, "cell", index),
            fn=_output,
            kwargs={"value": float(index)},
        )
        for index in range(CELL_COUNT)
    ]
    return CampaignPlan(experiment_id="bench-store", cells=cells, merge=list)


def _write_journal(journal_dir) -> None:
    journal_dir.mkdir(parents=True, exist_ok=True)
    plan = _plan()
    journal = CampaignJournal(journal_dir / "bench-store.jsonl", plan)
    journal.start({})
    for index in range(plan.cell_count):
        journal.record(index, plan.cells[index].run())
    journal.close()


def test_store_first_ingest(benchmark, tmp_path):
    journal_dir = tmp_path / "journals"
    _write_journal(journal_dir)
    stores = iter(range(10_000))

    def ingest():
        # A fresh store per round so every round pays the full insert cost.
        with ResultStore(tmp_path / f"store-{next(stores)}.sqlite") as store:
            return store.ingest(journal_dir)

    report = benchmark.pedantic(ingest, rounds=3, iterations=1)
    assert report.cells_added == CELL_COUNT
    save_result("store_first_ingest", {"cells": CELL_COUNT})


def test_store_reingest_noop(benchmark, tmp_path):
    journal_dir = tmp_path / "journals"
    _write_journal(journal_dir)
    store = ResultStore(tmp_path / "store.sqlite")
    first = store.ingest(journal_dir)
    assert first.cells_added == CELL_COUNT

    report = benchmark.pedantic(store.ingest, args=(journal_dir,), rounds=5, iterations=1)
    # Idempotence is the contract, not just speed: zero rows on re-ingest.
    assert report.rows_added == 0
    assert report.ingested == []
    _, rows = store.sql("SELECT COUNT(*) FROM cells")
    assert rows == [(CELL_COUNT,)]

    # The queried outputs still round-trip the journal payload byte-for-byte.
    _, cells = store.query_cells("bench-store")
    assert json.dumps([row[2] for row in cells]) == json.dumps(
        [float(i) * 2.0 for i in range(CELL_COUNT)]
    )
    store.close()
    save_result("store_reingest_noop", {"cells": CELL_COUNT})
