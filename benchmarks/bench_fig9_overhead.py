"""Fig. 9 — end-to-end overhead of detection vs DMR vs TMR on two drone platforms."""

from benchmarks._common import save_result
from repro.core import experiments


def test_fig9_overhead_comparison(benchmark):
    result = benchmark.pedantic(experiments.overhead_comparison, rounds=3, iterations=1)
    save_result("fig9", result)
    loss = {(row[0], row[1]): row[5] for row in result.rows}
    # Paper claims: the proposed detection scheme costs <2.7 % while TMR costs
    # ~9 % on the AirSim drone and the large majority of the DJI Spark's range.
    assert loss[("AirSim drone", "baseline")] < 0.0  # baseline is cheaper than detection
    assert abs(loss[("AirSim drone", "baseline")]) <= 2.8
    assert loss[("AirSim drone", "tmr")] > 5.0
    assert loss[("DJI Spark", "tmr")] > 50.0
    assert loss[("DJI Spark", "tmr")] > loss[("AirSim drone", "tmr")]
